"""Parallel sweep engine: schedule the kernel × config matrix.

``run_grid`` fans every (kernel, config) cell out over a
``multiprocessing`` worker pool.  Scheduling is longest-job-first:
each task's expected cost is looked up from previously stored cycle
counts, and unknown tasks are treated as the longest (they run first,
which both minimizes makespan under uncertainty and populates the
store for the next sweep).  Workers share the content-addressed store
through the filesystem — its atomic renames make concurrent writers of
the same key safe — so a warm grid completes without a single
compile/simulate call.

Every failure mode degrades gracefully: a pool that cannot be created
(restricted environments without ``/dev/shm``, missing ``fork``) falls
back to in-process serial execution, a task that times out or crashes
*transiently* is retried (with exponential backoff + jitter between
retry rounds), a task that fails *deterministically* (a ``ValueError``
from a bad config, a simulator invariant violation) is quarantined
immediately — retrying a byte-identical computation cannot succeed and
only starves the rest of the grid — and quarantined or retry-exhausted
tasks are re-run serially in the parent, where a real error surfaces
with its true traceback instead of a pickled pool remnant.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

log = logging.getLogger(__name__)

#: environment variable selecting the default worker count for sweeps
#: ("" / "0" / "1" = serial, "auto" = cpu count, N = N processes).
WORKERS_ENV = "REPRO_WORKERS"

#: backoff between pool retry rounds: base * 2^attempt, capped, jittered.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: exception types that mark a task as deterministically broken —
#: the same inputs will fail the same way, so retries are pointless.
#: (DeadlockError normally never escapes a worker — run_kernel converts
#: it into a KernelRun record — but classify it anyway for robustness.)
PERMANENT_ERRORS = (
    ValueError, TypeError, KeyError, AttributeError, AssertionError,
    ZeroDivisionError, IndexError, NotImplementedError,
)

_UNSET = object()


def _is_retryable(exc: BaseException) -> bool:
    """True for plausibly-transient worker failures (infrastructure:
    broken pipes, OOM kills surfacing as OSError, pickling hiccups);
    False for deterministic task failures."""
    from ..sim import MachineFailure, MemoryFault, SimError

    if isinstance(exc, (MachineFailure, SimError, MemoryFault)):
        return False
    if isinstance(exc, PERMANENT_ERRORS):
        return False
    return True


def _backoff_delay(attempt: int, rng: random.Random) -> float:
    """Full-jitter exponential backoff for retry round ``attempt``."""
    return min(BACKOFF_CAP, BACKOFF_BASE * (2 ** attempt)) * (
        0.5 + 0.5 * rng.random()
    )


@dataclass(frozen=True)
class SweepTask:
    """One cell of the grid."""

    kernel: str
    config: Any  # ExpConfig

    @property
    def cell(self) -> tuple[str, Any]:
        return (self.kernel, self.config)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker-count request; 0/1 means serial, -1 means
    "auto" (cpu count).

    Explicit arguments are strict: strings that are neither
    "auto"/"max" nor an integer, and negative counts other than -1,
    raise ValueError so callers can report the bad value instead of
    silently doing something else.  The env-var path stays lenient —
    a bad ``$REPRO_WORKERS`` logs a warning and degrades (invalid
    strings to serial, negatives to auto) rather than breaking every
    command that consults it.
    """
    from_env = workers is None
    if from_env:
        workers = os.environ.get(WORKERS_ENV, "").strip() or "0"
    if isinstance(workers, str):
        if workers.lower() in ("auto", "max"):
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(workers)
            except ValueError:
                if from_env:
                    log.warning("ignoring invalid %s=%r", WORKERS_ENV, workers)
                    return 0
                raise ValueError(
                    f"workers must be an integer or 'auto', got {workers!r}"
                ) from None
    if workers < 0:
        if workers != -1 and not from_env:
            raise ValueError(
                f"workers must be >= 0 (or -1 for auto), got {workers}"
            )
        if workers != -1:
            log.warning("%s=%d is negative; treating as auto", WORKERS_ENV, workers)
        workers = os.cpu_count() or 1
    return workers


def _task_key(spec: Any, config: Any) -> str:
    from ..experiments.common import store_key_for

    return store_key_for(spec, config)


def _estimate_cycles(store: Any, spec: Any, config: Any) -> float:
    """Expected task cost from a stored prior run; unknown → +inf so
    never-seen tasks are scheduled first (longest-job-first under
    uncertainty)."""
    if store is None:
        return math.inf
    run = store.get_run(_task_key(spec, config))
    if run is None:
        return math.inf
    if run.deadlocked or not math.isfinite(run.par_cycles):
        return 0.0  # warm deadlock records are pure store hits: instant
    return run.par_cycles


def _worker_run(kernel: str, config: Any, store_root: str | None) -> Any:
    """Pool worker: execute one cell against the shared store."""
    from ..experiments.common import run_kernel
    from ..kernels import get_kernel
    from .disk import ResultStore

    store = ResultStore(store_root) if store_root is not None else None
    return run_kernel(get_kernel(kernel), config, store=store)


def _campaign_doc(specs: Sequence[Any], configs: Sequence[Any]) -> dict:
    """JSON-safe description of a grid, sufficient to rebuild it on
    resume (kernels by registry name, configs by field dict)."""
    from dataclasses import asdict

    return {
        "kernels": [spec.name for spec in specs],
        "configs": [asdict(cfg) for cfg in configs],
    }


class _JournalScribe:
    """Parent-side journal bookkeeping for one grid run.

    Records each cell's *intent* exactly once, immediately before its
    first dispatch, and its *completion* once a result exists (the
    store write happens inside ``run_kernel``, in the worker or
    in-process, before the result is returned — so a ``done`` line
    always post-dates the durable record)."""

    def __init__(self, journal: Any, by_name: Mapping[str, Any]) -> None:
        self.journal = journal
        self.by_name = by_name
        self._keys: dict[tuple, str] = {}
        self._intents: set[str] = set()
        self._done: set[str] = set()

    def key_for(self, task: SweepTask) -> str:
        key = self._keys.get(task.cell)
        if key is None:
            key = _task_key(self.by_name[task.kernel], task.config)
            self._keys[task.cell] = key
        return key

    def intent(self, task: SweepTask) -> None:
        from dataclasses import asdict

        key = self.key_for(task)
        if key in self._intents:
            return  # retries re-dispatch; the intent stands
        self._intents.add(key)
        self.journal.record_intent(key, task.kernel, asdict(task.config))

    def done(self, task: SweepTask, status: str = "ok") -> None:
        key = self.key_for(task)
        if key in self._done:
            return
        self._done.add(key)
        self.journal.record_done(key, status)

    @property
    def pending(self) -> int:
        return len(self._intents) - len(self._done)


def run_grid(
    specs: Sequence[Any],
    configs: Sequence[Any],
    *,
    workers: int | str | None = None,
    timeout: float | None = None,
    retries: int = 1,
    store: Any = _UNSET,
    obs: Any = None,
    journal: Any = None,
) -> Mapping[tuple[str, Any], Any]:
    """Run every kernel × config cell; returns ``{(name, config): KernelRun}``.

    ``specs`` are :class:`~repro.kernels.base.KernelSpec` objects,
    ``configs`` are :class:`~repro.experiments.common.ExpConfig`.
    ``workers`` defaults to ``$REPRO_WORKERS`` (serial when unset);
    ``timeout`` bounds each task attempt in seconds; after ``retries``
    failed pool attempts a task is executed serially in-process.
    ``obs`` (a :class:`repro.obs.events.EventBus`) receives the task
    lifecycle: serial cells emit through :func:`run_kernel`'s hook,
    pool cells emit a parent-side completion event per handle (worker
    processes cannot share the in-memory bus).

    ``journal`` (a :class:`~repro.store.journal.SweepJournal`, an open
    path, or ``None``) arms the write-ahead journal: every cell's
    intent is on disk before its compute dispatches and its completion
    after the store write, so a killed sweep resumes with
    :func:`resume_grid` re-dispatching only the missing cells.
    """
    from ..experiments import common
    from .disk import default_store
    from .journal import SweepJournal

    if store is _UNSET:
        store = default_store()
    by_name = {spec.name: spec for spec in specs}
    tasks = [SweepTask(spec.name, cfg) for spec in specs for cfg in configs]
    # Longest-job-first from cached cycle counts (stable for ties).
    tasks.sort(
        key=lambda t: -_estimate_cycles(store, by_name[t.kernel], t.config)
    )

    owned_journal = journal is not None and not isinstance(journal, SweepJournal)
    if owned_journal:
        journal = SweepJournal(journal)
        journal.open_campaign(_campaign_doc(specs, configs))
    scribe = _JournalScribe(journal, by_name) if journal is not None else None

    results: dict[tuple[str, Any], Any] = {}
    try:
        _dispatch_tasks(
            tasks, by_name, results,
            workers=workers, timeout=timeout, retries=retries,
            store=store, obs=obs, scribe=scribe,
        )
    finally:
        if owned_journal:
            # complete only when nothing is owed: a crash or partial
            # failure must leave the recovery breadcrumb behind.
            journal.close(complete=scribe is not None and scribe.pending == 0)
    return results


def _dispatch_tasks(
    tasks: list[SweepTask],
    by_name: Mapping[str, Any],
    results: dict,
    *,
    workers: int | str | None,
    timeout: float | None,
    retries: int,
    store: Any,
    obs: Any,
    scribe: Any = None,
) -> None:
    """Pool-then-serial dispatch shared by ``run_grid`` and
    ``resume_grid`` (which re-dispatches an arbitrary task subset)."""
    from ..experiments import common

    n_workers = resolve_workers(workers)
    pending = list(tasks)
    if obs is not None and not getattr(obs, "enabled", False):
        obs = None
    if n_workers > 1 and len(tasks) > 1:
        pending = _run_pool(
            pending, by_name, results,
            workers=min(n_workers, len(tasks)),
            timeout=timeout, retries=retries, store=store, obs=obs,
            scribe=scribe,
        )

    # Batched-mode cells that share a kernel and a config-modulo-seed
    # form a seed column the lockstep machine can advance as one
    # simulation (repro.sim.fast.batch via run_kernel_batch).  The
    # journal discipline is unchanged: every cell's intent lands before
    # its column dispatches, every done after its record is durable.
    from dataclasses import replace as _replace

    columns: dict[tuple, list[SweepTask]] = {}
    serial: list[SweepTask] = []
    for task in pending:
        cfg = task.config
        if (getattr(cfg, "sim_mode", "reference") == "batched"
                and not getattr(cfg, "adaptive", False)):
            columns.setdefault(
                (task.kernel, _replace(cfg, seed=0)), []
            ).append(task)
        else:
            serial.append(task)
    for (kernel, _), group in columns.items():
        if len(group) < 2:
            serial.extend(group)
            continue
        if scribe is not None:
            for task in group:
                scribe.intent(task)
        runs = common.run_kernel_batch(
            by_name[kernel], [task.config for task in group],
            store=store, obs=obs,
        )
        for task, run in zip(group, runs):
            results[task.cell] = run
            if scribe is not None:
                scribe.done(task)

    for task in serial:  # scalar path and pool-failure fallback
        if scribe is not None:
            scribe.intent(task)
        results[task.cell] = common.run_kernel(
            by_name[task.kernel], task.config, store=store, obs=obs,
        )
        if scribe is not None:
            scribe.done(task)


@dataclass
class ResumeReport:
    """What :func:`resume_grid` found and did."""

    journal: str
    cells: int                     # total campaign cells
    intents: int                   # cells whose intent survived the crash
    completed: int                 # cells already durable in the store
    recomputed: int                # cells actually re-dispatched
    torn_lines: int = 0

    def format(self) -> str:
        return (
            f"resume {self.journal}: {self.cells} cell(s), "
            f"{self.intents} journaled intent(s), {self.completed} already "
            f"durable, {self.recomputed} re-dispatched"
            + (f", {self.torn_lines} torn line(s) tolerated"
               if self.torn_lines else "")
        )


def resume_grid(
    journal_path: Any,
    *,
    workers: int | str | None = None,
    timeout: float | None = None,
    retries: int = 1,
    store: Any = _UNSET,
    obs: Any = None,
) -> tuple[Mapping[tuple[str, Any], Any], ResumeReport]:
    """Resume a crashed journaled sweep: replay the journal against the
    store and re-dispatch **only** the missing cells.

    The store is ground truth in both directions — a cell whose record
    exists is complete even if its ``done`` line was torn off by the
    crash, and a ``done`` whose record has vanished is recomputed.
    Re-running a *completed* journal therefore performs zero computes
    (the idempotence invariant).  Returns the full grid results plus a
    :class:`ResumeReport`; on success the journal is closed complete.
    """
    from ..experiments.common import ExpConfig
    from ..kernels import get_kernel
    from .disk import default_store
    from .journal import SweepJournal, load_journal

    if store is _UNSET:
        store = default_store()
    state = load_journal(journal_path)
    if not state.schema_ok:
        raise ValueError(f"journal {journal_path} has an unsupported schema")
    campaign = state.campaign
    if not campaign.get("kernels") or not campaign.get("configs"):
        raise ValueError(
            f"journal {journal_path} carries no campaign (its 'open' record "
            "was lost); cannot rebuild the task list"
        )
    specs = [get_kernel(name) for name in campaign["kernels"]]
    configs = [ExpConfig(**cfg) for cfg in campaign["configs"]]
    by_name = {spec.name: spec for spec in specs}
    tasks = [SweepTask(spec.name, cfg) for spec in specs for cfg in configs]

    results: dict[tuple[str, Any], Any] = {}
    missing: list[SweepTask] = []
    for task in tasks:
        run = None
        if store is not None:
            run = store.get_run(_task_key(by_name[task.kernel], task.config))
        if run is not None:
            results[task.cell] = run
        else:
            missing.append(task)

    durable = len(results)  # before dispatch mutates the results dict
    if missing:
        journal = SweepJournal(journal_path)  # append to the same file
        scribe = _JournalScribe(journal, by_name)
        try:
            _dispatch_tasks(
                missing, by_name, results,
                workers=workers, timeout=timeout, retries=retries,
                store=store, obs=obs, scribe=scribe,
            )
        finally:
            journal.close(complete=scribe.pending == 0)
    else:
        # nothing owed: mark the journal complete so the next gc (and
        # the next --resume scan) skip it.
        journal = SweepJournal(journal_path)
        journal.close(complete=not state.closed)
    report = ResumeReport(
        journal=str(journal_path), cells=len(tasks), intents=len(state.intents),
        completed=durable, recomputed=len(missing),
        torn_lines=state.torn_lines,
    )
    return results, report


def _run_pool(
    pending: list[SweepTask],
    by_name: Mapping[str, Any],
    results: dict,
    *,
    workers: int,
    timeout: float | None,
    retries: int,
    store: Any,
    obs: Any = None,
    scribe: Any = None,
) -> list[SweepTask]:
    """Drain ``pending`` through a worker pool; returns tasks left for
    the serial fallback (retry-exhausted and quarantined cells).

    Failure discipline: a *transient* failure (timeout, infrastructure
    error) is retried in the next pool round, after an exponential
    backoff with jitter; a *deterministic* failure (bad config, sim
    invariant violation — see :data:`PERMANENT_ERRORS`) quarantines the
    cell immediately, as does exhausting the per-cell retry budget, so
    one repeatedly-crashing cell can never starve the rest of the grid
    of pool rounds.  Quarantined cells run serially in the parent where
    a genuine error surfaces with its real traceback.
    """
    from ..experiments import common

    root = str(store.root) if store is not None else None
    ctx = multiprocessing.get_context()
    rng = random.Random(0xC0FFEE ^ len(pending))
    quarantined: list[SweepTask] = []
    fail_counts: dict[tuple, int] = {}
    for attempt in range(retries + 1):
        if not pending:
            break
        try:
            pool = ctx.Pool(processes=min(workers, len(pending)))
        except (OSError, ValueError, ImportError) as exc:
            log.warning("sweep: worker pool unavailable (%s); running serially", exc)
            return pending + quarantined
        failed: list[SweepTask] = []
        timed_out = False

        def _fail(task: SweepTask, reason: str, retryable: bool) -> None:
            fail_counts[task.cell] = fail_counts.get(task.cell, 0) + 1
            if not retryable:
                log.warning(
                    "sweep: %s failed deterministically (%s); quarantined "
                    "for serial fallback, no pool retries", task.kernel, reason,
                )
                quarantined.append(task)
            elif fail_counts[task.cell] > retries:
                log.warning(
                    "sweep: %s failed %d time(s) (%s); quarantined for "
                    "serial fallback", task.kernel, fail_counts[task.cell], reason,
                )
                quarantined.append(task)
            else:
                log.warning(
                    "sweep: %s failed (%s); will retry (attempt %d/%d)",
                    task.kernel, reason, attempt + 1, retries + 1,
                )
                failed.append(task)

        try:
            t_round = time.perf_counter()
            if scribe is not None:
                # write-ahead discipline: every intent line hits disk
                # before the first worker can touch its cell.
                for t in pending:
                    scribe.intent(t)
            handles = [
                (t, pool.apply_async(_worker_run, (t.kernel, t.config, root)))
                for t in pending
            ]
            for task, handle in handles:
                name = f"{task.kernel}:c{task.config.n_cores}"
                try:
                    run = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    _fail(task, f"timed out after {timeout or 0.0:.1f}s",
                          retryable=True)
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      "timeout")
                except Exception as exc:
                    _fail(task, f"{type(exc).__name__}: {exc}",
                          retryable=_is_retryable(exc))
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      type(exc).__name__)
                else:
                    results[task.cell] = run
                    common.seed_cache(run)  # parent L1: later serial calls reuse
                    if scribe is not None:
                        # the worker's run_kernel persisted the record
                        # before returning: completion is now durable.
                        scribe.done(task)
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      run.failure or "ok")
        finally:
            # A timed-out worker may still hold a pool slot; terminate
            # so retries start on a clean pool.
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        pending = failed
        if pending and attempt < retries:
            delay = _backoff_delay(attempt, rng)
            log.info("sweep: backing off %.2fs before retry round %d",
                     delay, attempt + 2)
            time.sleep(delay)
    return pending + quarantined
