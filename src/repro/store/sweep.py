"""Parallel sweep engine: schedule the kernel × config matrix.

``run_grid`` fans every (kernel, config) cell out over a
``multiprocessing`` worker pool.  Scheduling is longest-job-first:
each task's expected cost is looked up from previously stored cycle
counts, and unknown tasks are treated as the longest (they run first,
which both minimizes makespan under uncertainty and populates the
store for the next sweep).  Workers share the content-addressed store
through the filesystem — its atomic renames make concurrent writers of
the same key safe — so a warm grid completes without a single
compile/simulate call.

Every failure mode degrades gracefully: a pool that cannot be created
(restricted environments without ``/dev/shm``, missing ``fork``) falls
back to in-process serial execution, a task that times out or crashes
*transiently* is retried (with exponential backoff + jitter between
retry rounds), a task that fails *deterministically* (a ``ValueError``
from a bad config, a simulator invariant violation) is quarantined
immediately — retrying a byte-identical computation cannot succeed and
only starves the rest of the grid — and quarantined or retry-exhausted
tasks are re-run serially in the parent, where a real error surfaces
with its true traceback instead of a pickled pool remnant.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

log = logging.getLogger(__name__)

#: environment variable selecting the default worker count for sweeps
#: ("" / "0" / "1" = serial, "auto" = cpu count, N = N processes).
WORKERS_ENV = "REPRO_WORKERS"

#: backoff between pool retry rounds: base * 2^attempt, capped, jittered.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: exception types that mark a task as deterministically broken —
#: the same inputs will fail the same way, so retries are pointless.
#: (DeadlockError normally never escapes a worker — run_kernel converts
#: it into a KernelRun record — but classify it anyway for robustness.)
PERMANENT_ERRORS = (
    ValueError, TypeError, KeyError, AttributeError, AssertionError,
    ZeroDivisionError, IndexError, NotImplementedError,
)

_UNSET = object()


def _is_retryable(exc: BaseException) -> bool:
    """True for plausibly-transient worker failures (infrastructure:
    broken pipes, OOM kills surfacing as OSError, pickling hiccups);
    False for deterministic task failures."""
    from ..sim import MachineFailure, MemoryFault, SimError

    if isinstance(exc, (MachineFailure, SimError, MemoryFault)):
        return False
    if isinstance(exc, PERMANENT_ERRORS):
        return False
    return True


def _backoff_delay(attempt: int, rng: random.Random) -> float:
    """Full-jitter exponential backoff for retry round ``attempt``."""
    return min(BACKOFF_CAP, BACKOFF_BASE * (2 ** attempt)) * (
        0.5 + 0.5 * rng.random()
    )


@dataclass(frozen=True)
class SweepTask:
    """One cell of the grid."""

    kernel: str
    config: Any  # ExpConfig

    @property
    def cell(self) -> tuple[str, Any]:
        return (self.kernel, self.config)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker-count request; 0/1 means serial, -1 means
    "auto" (cpu count).

    Explicit arguments are strict: strings that are neither
    "auto"/"max" nor an integer, and negative counts other than -1,
    raise ValueError so callers can report the bad value instead of
    silently doing something else.  The env-var path stays lenient —
    a bad ``$REPRO_WORKERS`` logs a warning and degrades (invalid
    strings to serial, negatives to auto) rather than breaking every
    command that consults it.
    """
    from_env = workers is None
    if from_env:
        workers = os.environ.get(WORKERS_ENV, "").strip() or "0"
    if isinstance(workers, str):
        if workers.lower() in ("auto", "max"):
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(workers)
            except ValueError:
                if from_env:
                    log.warning("ignoring invalid %s=%r", WORKERS_ENV, workers)
                    return 0
                raise ValueError(
                    f"workers must be an integer or 'auto', got {workers!r}"
                ) from None
    if workers < 0:
        if workers != -1 and not from_env:
            raise ValueError(
                f"workers must be >= 0 (or -1 for auto), got {workers}"
            )
        if workers != -1:
            log.warning("%s=%d is negative; treating as auto", WORKERS_ENV, workers)
        workers = os.cpu_count() or 1
    return workers


def _task_key(spec: Any, config: Any) -> str:
    from ..experiments.common import store_key_for

    return store_key_for(spec, config)


def _estimate_cycles(store: Any, spec: Any, config: Any) -> float:
    """Expected task cost from a stored prior run; unknown → +inf so
    never-seen tasks are scheduled first (longest-job-first under
    uncertainty)."""
    if store is None:
        return math.inf
    run = store.get_run(_task_key(spec, config))
    if run is None:
        return math.inf
    if run.deadlocked or not math.isfinite(run.par_cycles):
        return 0.0  # warm deadlock records are pure store hits: instant
    return run.par_cycles


def _worker_run(kernel: str, config: Any, store_root: str | None) -> Any:
    """Pool worker: execute one cell against the shared store."""
    from ..experiments.common import run_kernel
    from ..kernels import get_kernel
    from .disk import ResultStore

    store = ResultStore(store_root) if store_root is not None else None
    return run_kernel(get_kernel(kernel), config, store=store)


def run_grid(
    specs: Sequence[Any],
    configs: Sequence[Any],
    *,
    workers: int | str | None = None,
    timeout: float | None = None,
    retries: int = 1,
    store: Any = _UNSET,
    obs: Any = None,
) -> Mapping[tuple[str, Any], Any]:
    """Run every kernel × config cell; returns ``{(name, config): KernelRun}``.

    ``specs`` are :class:`~repro.kernels.base.KernelSpec` objects,
    ``configs`` are :class:`~repro.experiments.common.ExpConfig`.
    ``workers`` defaults to ``$REPRO_WORKERS`` (serial when unset);
    ``timeout`` bounds each task attempt in seconds; after ``retries``
    failed pool attempts a task is executed serially in-process.
    ``obs`` (a :class:`repro.obs.events.EventBus`) receives the task
    lifecycle: serial cells emit through :func:`run_kernel`'s hook,
    pool cells emit a parent-side completion event per handle (worker
    processes cannot share the in-memory bus).
    """
    from ..experiments import common
    from .disk import default_store

    if store is _UNSET:
        store = default_store()
    by_name = {spec.name: spec for spec in specs}
    tasks = [SweepTask(spec.name, cfg) for spec in specs for cfg in configs]
    # Longest-job-first from cached cycle counts (stable for ties).
    tasks.sort(
        key=lambda t: -_estimate_cycles(store, by_name[t.kernel], t.config)
    )

    n_workers = resolve_workers(workers)
    results: dict[tuple[str, Any], Any] = {}
    pending = list(tasks)

    if obs is not None and not getattr(obs, "enabled", False):
        obs = None
    if n_workers > 1 and len(tasks) > 1:
        pending = _run_pool(
            pending, by_name, results,
            workers=min(n_workers, len(tasks)),
            timeout=timeout, retries=retries, store=store, obs=obs,
        )

    for task in pending:  # serial path and pool-failure fallback
        results[task.cell] = common.run_kernel(
            by_name[task.kernel], task.config, store=store, obs=obs,
        )
    return results


def _run_pool(
    pending: list[SweepTask],
    by_name: Mapping[str, Any],
    results: dict,
    *,
    workers: int,
    timeout: float | None,
    retries: int,
    store: Any,
    obs: Any = None,
) -> list[SweepTask]:
    """Drain ``pending`` through a worker pool; returns tasks left for
    the serial fallback (retry-exhausted and quarantined cells).

    Failure discipline: a *transient* failure (timeout, infrastructure
    error) is retried in the next pool round, after an exponential
    backoff with jitter; a *deterministic* failure (bad config, sim
    invariant violation — see :data:`PERMANENT_ERRORS`) quarantines the
    cell immediately, as does exhausting the per-cell retry budget, so
    one repeatedly-crashing cell can never starve the rest of the grid
    of pool rounds.  Quarantined cells run serially in the parent where
    a genuine error surfaces with its real traceback.
    """
    from ..experiments import common

    root = str(store.root) if store is not None else None
    ctx = multiprocessing.get_context()
    rng = random.Random(0xC0FFEE ^ len(pending))
    quarantined: list[SweepTask] = []
    fail_counts: dict[tuple, int] = {}
    for attempt in range(retries + 1):
        if not pending:
            break
        try:
            pool = ctx.Pool(processes=min(workers, len(pending)))
        except (OSError, ValueError, ImportError) as exc:
            log.warning("sweep: worker pool unavailable (%s); running serially", exc)
            return pending + quarantined
        failed: list[SweepTask] = []
        timed_out = False

        def _fail(task: SweepTask, reason: str, retryable: bool) -> None:
            fail_counts[task.cell] = fail_counts.get(task.cell, 0) + 1
            if not retryable:
                log.warning(
                    "sweep: %s failed deterministically (%s); quarantined "
                    "for serial fallback, no pool retries", task.kernel, reason,
                )
                quarantined.append(task)
            elif fail_counts[task.cell] > retries:
                log.warning(
                    "sweep: %s failed %d time(s) (%s); quarantined for "
                    "serial fallback", task.kernel, fail_counts[task.cell], reason,
                )
                quarantined.append(task)
            else:
                log.warning(
                    "sweep: %s failed (%s); will retry (attempt %d/%d)",
                    task.kernel, reason, attempt + 1, retries + 1,
                )
                failed.append(task)

        try:
            t_round = time.perf_counter()
            handles = [
                (t, pool.apply_async(_worker_run, (t.kernel, t.config, root)))
                for t in pending
            ]
            for task, handle in handles:
                name = f"{task.kernel}:c{task.config.n_cores}"
                try:
                    run = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    _fail(task, f"timed out after {timeout or 0.0:.1f}s",
                          retryable=True)
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      "timeout")
                except Exception as exc:
                    _fail(task, f"{type(exc).__name__}: {exc}",
                          retryable=_is_retryable(exc))
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      type(exc).__name__)
                else:
                    results[task.cell] = run
                    common.seed_cache(run)  # parent L1: later serial calls reuse
                    if obs is not None:
                        obs.emit_task(name, t_round, time.perf_counter(),
                                      run.failure or "ok")
        finally:
            # A timed-out worker may still hold a pool slot; terminate
            # so retries start on a clean pool.
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        pending = failed
        if pending and attempt < retries:
            delay = _backoff_delay(attempt, rng)
            log.info("sweep: backing off %.2fs before retry round %d",
                     delay, attempt + 2)
            time.sleep(delay)
    return pending + quarantined
