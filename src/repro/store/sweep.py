"""Parallel sweep engine: schedule the kernel × config matrix.

``run_grid`` fans every (kernel, config) cell out over a
``multiprocessing`` worker pool.  Scheduling is longest-job-first:
each task's expected cost is looked up from previously stored cycle
counts, and unknown tasks are treated as the longest (they run first,
which both minimizes makespan under uncertainty and populates the
store for the next sweep).  Workers share the content-addressed store
through the filesystem — its atomic renames make concurrent writers of
the same key safe — so a warm grid completes without a single
compile/simulate call.

Every failure mode degrades gracefully: a pool that cannot be created
(restricted environments without ``/dev/shm``, missing ``fork``) falls
back to in-process serial execution, a task that times out or crashes
is retried, and tasks that exhaust their retries are re-run serially
in the parent so the grid always comes back complete.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

log = logging.getLogger(__name__)

#: environment variable selecting the default worker count for sweeps
#: ("" / "0" / "1" = serial, "auto" = cpu count, N = N processes).
WORKERS_ENV = "REPRO_WORKERS"

_UNSET = object()


@dataclass(frozen=True)
class SweepTask:
    """One cell of the grid."""

    kernel: str
    config: Any  # ExpConfig

    @property
    def cell(self) -> tuple[str, Any]:
        return (self.kernel, self.config)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker-count request; 0/1 means serial.

    Raises ValueError for strings that are neither "auto"/"max" nor an
    integer, so callers can report the bad value instead of crashing.
    """
    from_env = workers is None
    if from_env:
        workers = os.environ.get(WORKERS_ENV, "").strip() or "0"
    if isinstance(workers, str):
        if workers.lower() in ("auto", "max"):
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(workers)
            except ValueError:
                if from_env:
                    log.warning("ignoring invalid %s=%r", WORKERS_ENV, workers)
                    return 0
                raise ValueError(
                    f"workers must be an integer or 'auto', got {workers!r}"
                ) from None
    if workers < 0:
        workers = os.cpu_count() or 1
    return workers


def _task_key(spec: Any, config: Any) -> str:
    from ..experiments.common import store_key_for

    return store_key_for(spec, config)


def _estimate_cycles(store: Any, spec: Any, config: Any) -> float:
    """Expected task cost from a stored prior run; unknown → +inf so
    never-seen tasks are scheduled first (longest-job-first under
    uncertainty)."""
    if store is None:
        return math.inf
    run = store.get_run(_task_key(spec, config))
    if run is None:
        return math.inf
    if run.deadlocked or not math.isfinite(run.par_cycles):
        return 0.0  # warm deadlock records are pure store hits: instant
    return run.par_cycles


def _worker_run(kernel: str, config: Any, store_root: str | None) -> Any:
    """Pool worker: execute one cell against the shared store."""
    from ..experiments.common import run_kernel
    from ..kernels import get_kernel
    from .disk import ResultStore

    store = ResultStore(store_root) if store_root is not None else None
    return run_kernel(get_kernel(kernel), config, store=store)


def run_grid(
    specs: Sequence[Any],
    configs: Sequence[Any],
    *,
    workers: int | str | None = None,
    timeout: float | None = None,
    retries: int = 1,
    store: Any = _UNSET,
) -> Mapping[tuple[str, Any], Any]:
    """Run every kernel × config cell; returns ``{(name, config): KernelRun}``.

    ``specs`` are :class:`~repro.kernels.base.KernelSpec` objects,
    ``configs`` are :class:`~repro.experiments.common.ExpConfig`.
    ``workers`` defaults to ``$REPRO_WORKERS`` (serial when unset);
    ``timeout`` bounds each task attempt in seconds; after ``retries``
    failed pool attempts a task is executed serially in-process.
    """
    from ..experiments import common
    from .disk import default_store

    if store is _UNSET:
        store = default_store()
    by_name = {spec.name: spec for spec in specs}
    tasks = [SweepTask(spec.name, cfg) for spec in specs for cfg in configs]
    # Longest-job-first from cached cycle counts (stable for ties).
    tasks.sort(
        key=lambda t: -_estimate_cycles(store, by_name[t.kernel], t.config)
    )

    n_workers = resolve_workers(workers)
    results: dict[tuple[str, Any], Any] = {}
    pending = list(tasks)

    if n_workers > 1 and len(tasks) > 1:
        pending = _run_pool(
            pending, by_name, results,
            workers=min(n_workers, len(tasks)),
            timeout=timeout, retries=retries, store=store,
        )

    for task in pending:  # serial path and pool-failure fallback
        results[task.cell] = common.run_kernel(
            by_name[task.kernel], task.config, store=store
        )
    return results


def _run_pool(
    pending: list[SweepTask],
    by_name: Mapping[str, Any],
    results: dict,
    *,
    workers: int,
    timeout: float | None,
    retries: int,
    store: Any,
) -> list[SweepTask]:
    """Drain ``pending`` through a worker pool; returns tasks left for
    the serial fallback."""
    from ..experiments import common

    root = str(store.root) if store is not None else None
    ctx = multiprocessing.get_context()
    for attempt in range(retries + 1):
        if not pending:
            break
        try:
            pool = ctx.Pool(processes=min(workers, len(pending)))
        except (OSError, ValueError, ImportError) as exc:
            log.warning("sweep: worker pool unavailable (%s); running serially", exc)
            return pending
        failed: list[SweepTask] = []
        timed_out = False
        try:
            handles = [
                (t, pool.apply_async(_worker_run, (t.kernel, t.config, root)))
                for t in pending
            ]
            for task, handle in handles:
                try:
                    run = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    log.warning(
                        "sweep: %s timed out after %.1fs (attempt %d/%d)",
                        task.kernel, timeout or 0.0, attempt + 1, retries + 1,
                    )
                    failed.append(task)
                    timed_out = True
                except Exception as exc:
                    log.warning(
                        "sweep: %s failed in worker (%s: %s); will retry",
                        task.kernel, type(exc).__name__, exc,
                    )
                    failed.append(task)
                else:
                    results[task.cell] = run
                    common.seed_cache(run)  # parent L1: later serial calls reuse
        finally:
            # A timed-out worker may still hold a pool slot; terminate
            # so retries start on a clean pool.
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        pending = failed
    return pending
