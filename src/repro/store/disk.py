"""On-disk content-addressed result store.

Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps
directory fan-out bounded at 256 even for very large stores.

Concurrency: writers serialize each record to a unique temp file in
the final directory and ``os.replace`` it into place.  The rename is
atomic on POSIX, so concurrent writers of the same key (sweep workers
on different processes or machines sharing a filesystem) race
harmlessly — readers always observe either no file or one complete,
valid record, never a torn write.

Robustness: any unreadable, unparsable, truncated, or
schema-mismatched record is treated as a cache miss.  ``gc`` deletes
such records (plus abandoned temp files); ``clear`` deletes
everything.

Concurrent writers: on filesystems where the rename is *not* atomic
(network mounts, some overlayfs setups) a reader can observe a
partially-visible or mid-replace record.  The read path therefore
retries exactly once — after a short delay — when a record *exists but
fails to parse*; a plain missing file is a genuine miss and is never
retried (no added latency on the hot miss path).  ``gc`` re-validates
every stale candidate immediately before unlinking, so a writer that
replaces a corrupt record mid-collection never has its fresh record
deleted underfoot.

The default store root is, in priority order, ``$REPRO_CACHE_DIR``,
else ``~/.cache/repro/store``.  Setting ``REPRO_CACHE=0`` disables the
persistent layer entirely (pure in-process memoisation remains).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from . import records

#: environment variable overriding the store root directory.
ROOT_ENV = "REPRO_CACHE_DIR"
#: set to "0" to disable the persistent store.
ENABLE_ENV = "REPRO_CACHE"

#: pause before re-reading a record that exists but failed to parse —
#: long enough for a concurrent ``os.replace`` to land, short enough
#: to be invisible (only paid on the corrupt-read path, never on a
#: plain miss).
RETRY_DELAY = 0.002

#: ``gc`` only reclaims temp files at least this old (seconds): a
#: fresh temp file is almost certainly a live writer mid-``put``, and
#: unlinking it would make the writer's ``os.replace`` blow up.  Only
#: genuinely abandoned files (crashed writers) age past this.
TMP_GRACE = 60.0


def store_root() -> Path:
    """Resolve the store root from the environment."""
    env = os.environ.get(ROOT_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "store"


class StoreWriteError(OSError):
    """A store write failed at the OS level (``ENOSPC``, ``EIO``, a
    vanished mount...).  Subclasses :class:`OSError` so existing
    handlers still match, but carries a distinct identity so the serve
    failure boundary can classify it as ``store-error`` instead of a
    generic compute failure — a full disk must shed load loudly, not
    masquerade as a compiler bug."""


@dataclass
class StoreStats:
    """Snapshot of on-disk contents plus this process's session counters."""

    root: str
    run_records: int = 0
    seq_records: int = 0
    src_records: int = 0
    stale_records: int = 0
    total_bytes: int = 0
    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def records(self) -> int:
        return self.run_records + self.seq_records + self.src_records

    def format(self) -> str:
        lines = [
            f"store root   : {self.root}",
            f"run records  : {self.run_records}",
            f"seq records  : {self.seq_records}",
            f"src records  : {self.src_records}",
            f"stale/corrupt: {self.stale_records}",
            f"total size   : {self.total_bytes / 1024:.1f} KiB",
            f"this session : {self.hits} hits / {self.misses} misses / "
            f"{self.writes} writes",
        ]
        return "\n".join(lines)


@dataclass
class GcReport:
    removed_stale: int = 0
    removed_tmp: int = 0
    removed_journals: int = 0
    #: records spared because an incomplete journal still references them.
    protected: int = 0

    def format(self) -> str:
        out = (
            f"removed {self.removed_stale} stale/corrupt record(s), "
            f"{self.removed_tmp} abandoned temp file(s), "
            f"{self.removed_journals} completed journal(s)"
        )
        if self.protected:
            out += f"; kept {self.protected} journal-protected record(s)"
        return out


class ResultStore:
    """Content-addressed persistent result store."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else store_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- raw envelope layer -------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _read_text(self, path: Path) -> str:
        """Single raw read; split out so tests can fault-inject torn
        reads without touching the filesystem layer."""
        return path.read_text(encoding="utf-8")

    def _read_envelope(self, path: Path) -> dict | None:
        """Read + parse one record, retrying once on a corrupt read.

        A missing file is a definitive miss (the atomic-rename contract
        means it was never written) and returns immediately.  A file
        that exists but does not parse is plausibly a concurrent writer
        mid-replace on a non-atomic filesystem: re-read once after
        :data:`RETRY_DELAY` before declaring it corrupt.
        """
        for attempt in (0, 1):
            try:
                envelope = json.loads(self._read_text(path))
                if not isinstance(envelope, dict):
                    raise ValueError("record is not an object")
                return envelope
            except FileNotFoundError:
                return None
            except (OSError, ValueError):
                if attempt:
                    return None
                time.sleep(RETRY_DELAY)
        return None

    def get(self, key: str) -> dict | None:
        """Load an envelope; any failure mode is a miss."""
        envelope = self._read_envelope(self._path(key))
        if envelope is None:
            self.misses += 1
            return None
        self.hits += 1
        return envelope

    def put(self, key: str, envelope: dict) -> None:
        """Atomically persist an envelope (temp file + rename).

        OS-level failures (``ENOSPC``, ``EIO``) are re-raised as
        :class:`StoreWriteError` — still an :class:`OSError`, but
        classifiable: callers that ack results only after a durable
        write (serve, the journaled sweep) turn this into a structured
        ``store-error`` response instead of a mystery crash.
        """
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
        except OSError as exc:
            raise StoreWriteError(f"store write failed for {key[:12]}…: {exc}") from exc
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(envelope, f, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise StoreWriteError(
                    f"store write failed for {key[:12]}…: {exc}"
                ) from exc
            raise
        self.writes += 1

    # -- typed layer ---------------------------------------------------

    def get_run(self, key: str) -> Any | None:
        envelope = self.get(key)
        if envelope is None:
            return None
        run = records.decode_run(envelope)
        if run is None:  # readable JSON but wrong schema/kind/shape
            self.hits -= 1
            self.misses += 1
        return run

    def put_run(self, key: str, run: Any) -> None:
        self.put(key, records.encode_run(key, run))

    def get_seq(self, key: str) -> float | None:
        envelope = self.get(key)
        if envelope is None:
            return None
        cycles = records.decode_seq(envelope)
        if cycles is None:
            self.hits -= 1
            self.misses += 1
        return cycles

    def put_seq(self, key: str, kernel: str, cycles: float) -> None:
        self.put(key, records.encode_seq(key, kernel, cycles))

    def get_src(self, key: str) -> str | None:
        envelope = self.get(key)
        if envelope is None:
            return None
        source = records.decode_src(envelope)
        if source is None:
            self.hits -= 1
            self.misses += 1
        return source

    def put_src(self, key: str, kernel: str, source: str) -> None:
        self.put(key, records.encode_src(key, kernel, source))

    # -- maintenance ---------------------------------------------------

    def _record_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def _tmp_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                # mkstemp names start with "." (hidden); a bare "*.tmp"
                # glob would skip them and gc would never reclaim space.
                yield from sorted(
                    p for p in shard.iterdir() if p.name.endswith(".tmp")
                )

    def stats(self) -> StoreStats:
        st = StoreStats(
            root=str(self.root),
            hits=self.hits, misses=self.misses, writes=self.writes,
        )
        for path in self._record_paths():
            try:
                st.total_bytes += path.stat().st_size
            except OSError:
                continue  # vanished mid-walk (concurrent gc/clear)
            envelope = self._read_envelope(path)
            try:
                kind = envelope.get("kind") if envelope else None
                if envelope is None and not path.exists():
                    continue  # deleted underfoot, not stale
                if envelope is None or envelope.get("schema") != records.SCHEMA_VERSION:
                    st.stale_records += 1
                elif kind == "run":
                    st.run_records += 1
                elif kind == "seq":
                    st.seq_records += 1
                elif kind == "src":
                    st.src_records += 1
                else:
                    st.stale_records += 1
            except (OSError, AttributeError):
                st.stale_records += 1
        return st

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in list(self._record_paths()) + list(self._tmp_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @staticmethod
    def _envelope_stale(envelope: dict | None) -> bool:
        return (
            envelope is None
            or envelope.get("schema") != records.SCHEMA_VERSION
            or envelope.get("kind") not in ("run", "seq", "src")
        )

    def gc(self, protect: set[str] | frozenset[str] | None = None) -> GcReport:
        """Drop unreadable / stale-schema records and abandoned temp files.

        Safe against concurrent writers and readers: a stale candidate
        is re-validated immediately before the unlink, so a writer that
        replaced the record since the sweep started keeps its fresh
        record; files that vanish mid-sweep are simply skipped; temp
        files younger than :data:`TMP_GRACE` are left alone (they are
        live writers mid-``put``, not abandoned debris).

        Safe against crash recovery: any key referenced by an
        *incomplete* write-ahead journal under ``<root>/journals/`` —
        plus anything in the explicit ``protect`` set — is never
        collected, even if its current record looks stale.  A resume
        may be about to read or rewrite exactly that key; collecting it
        underfoot would turn a recoverable crash into lost work.
        Completed journals are reclaimed in the same pass.
        """
        from .journal import gc_journals, protected_keys

        report = GcReport()
        protected = set(protect or ()) | protected_keys(self.root)
        for path in self._record_paths():
            if path.stem in protected:
                report.protected += 1
                continue
            if not self._envelope_stale(self._read_envelope(path)):
                continue
            if not path.exists():
                continue  # already gone: nothing to reclaim
            # Re-validate right before deleting — the record may have
            # been atomically replaced with a fresh one since the first
            # read; deleting it now would drop a live result underfoot.
            if not self._envelope_stale(self._read_envelope(path)):
                continue
            try:
                path.unlink()
                report.removed_stale += 1
            except OSError:
                pass
        cutoff = time.time() - TMP_GRACE
        for path in self._tmp_paths():
            try:
                if path.stat().st_mtime > cutoff:
                    continue  # a live writer is mid-put; leave it alone
                path.unlink()
                report.removed_tmp += 1
            except OSError:
                pass
        report.removed_journals = gc_journals(self.root, store=self)
        return report


_default: ResultStore | None = None


def default_store() -> ResultStore | None:
    """Process-wide default store (or ``None`` when disabled).

    Re-resolves the root on each call so tests and CLI flags that
    change ``$REPRO_CACHE_DIR`` mid-process take effect; the instance
    (and its session counters) is reused while the root is stable.
    """
    global _default
    if os.environ.get(ENABLE_ENV, "1") == "0":
        return None
    root = store_root()
    if _default is None or _default.root != root:
        _default = ResultStore(root)
    return _default
