"""Persistent content-addressed result store + parallel sweep engine.

The experiment harness re-simulates identical (kernel, config,
workload) cells on every process start; this package removes that
waste and turns the kernel × config matrix into a schedulable grid:

* :mod:`repro.store.keys` — SHA-256 cache keys over the kernel's
  normalized IR text, the :class:`~repro.compiler.CompilerConfig`, the
  :class:`~repro.sim.MachineParams` and the workload ``(trip, seed)``
  recipe.  Anything that can change a simulated cycle count changes
  the key; nothing else does.
* :mod:`repro.store.records` — versioned JSON envelopes for
  :class:`~repro.experiments.common.KernelRun` records (and the
  lightweight sequential-baseline records).
* :mod:`repro.store.disk` — the on-disk store: sharded layout, atomic
  temp-file + rename writes, corruption-tolerant reads (a bad record
  is a miss, never a crash), stats / clear / gc maintenance.
* :mod:`repro.store.sweep` — ``run_grid``: fan a kernel × config grid
  out over a ``multiprocessing`` pool with longest-job-first ordering
  seeded from cached cycle counts, per-task timeout + retry, and
  graceful in-process serial fallback.
* :mod:`repro.store.journal` — write-ahead sweep journal: intent
  before compute, completion after the durable store write, so a
  ``kill -9``'d sweep or daemon resumes by re-dispatching only the
  missing cells (``run_grid(journal=...)`` / ``resume_grid``).
"""

from .disk import ResultStore, StoreStats, StoreWriteError, default_store, store_root
from .journal import JournalState, SweepJournal, load_journal, new_journal_path
from .keys import SCHEMA_VERSION, ir_text, kernel_run_key, stable_digest
from .sweep import resume_grid, run_grid

__all__ = [
    "SCHEMA_VERSION",
    "JournalState",
    "ResultStore",
    "StoreStats",
    "StoreWriteError",
    "SweepJournal",
    "default_store",
    "ir_text",
    "kernel_run_key",
    "load_journal",
    "new_journal_path",
    "resume_grid",
    "run_grid",
    "stable_digest",
    "store_root",
]
