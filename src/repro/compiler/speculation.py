"""Rollback-free control-flow speculation (paper §III-H, Fig 10).

"We identify if-then-else statements where the code in the then-block
and else-block is mostly independent and has no side effects.  This
code can then be concurrently executed ahead-of-time, before the value
of the conditional is known.  The form of speculation we use in our
transformation is very limited: it is guaranteed not to require
rollback."

Transformation: for an eligible conditional, both arms are hoisted
unconditionally (arm-local temporaries renamed apart), and each
temporary the arms assign is committed with a ``select`` on the
condition value.  Because the arms are side-effect-free (no stores) and
every operator is non-trapping (see :mod:`repro.ops`), executing the
not-taken arm is harmless, and no communication ever needs to be
unpaired — exactly the property the paper relies on.

Eligibility:

* both arms contain only scalar assignments (no stores, no nested
  conditionals after inner transformation);
* neither arm reads a temporary the other arm assigns;
* a temporary assigned in only one arm must have a value on the other
  path (a prior definition in the enclosing block, a parameter, or an
  accumulator), so the select has a fall-through operand.
"""

from __future__ import annotations

from ..ir.nodes import Select, VarRef
from ..ir.stmts import Assign, If, Loop, Stmt, Store
from ..ir.visitors import clone, var_names


def apply_speculation(loop: Loop) -> Loop:
    """Return a new Loop with eligible conditionals speculated."""
    counter = [0]
    defined: set[str] = set(p.name for p in loop.params) | {loop.index}
    new_body = _transform_block(loop.body, defined, counter)
    return Loop(
        name=loop.name,
        index=loop.index,
        trip=loop.trip,
        body=new_body,
        arrays=list(loop.arrays),
        params=list(loop.params),
        live_out=list(loop.live_out),
        source=loop.source,
    )


def _transform_block(
    block: list[Stmt], defined: set[str], counter: list[int]
) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in block:
        if isinstance(stmt, Assign):
            out.append(_copy_assign(stmt))
            defined.add(stmt.target)
        elif isinstance(stmt, Store):
            s = Store(stmt.array, clone(stmt.index), clone(stmt.expr))
            s.line = stmt.line
            out.append(s)
        elif isinstance(stmt, If):
            then = _transform_block(stmt.then, set(defined), counter)
            orelse = _transform_block(stmt.orelse, set(defined), counter)
            rewritten = If(clone(stmt.cond), then, orelse)
            rewritten.line = stmt.line
            if _eligible(rewritten, defined):
                out.extend(_speculate(rewritten, defined, counter))
                for s in then + orelse:
                    if isinstance(s, Assign):
                        defined.add(s.target)
            else:
                out.append(rewritten)
                # only arm-common assignments are definitely defined after
                t_names = {s.target for s in then if isinstance(s, Assign)}
                e_names = {s.target for s in orelse if isinstance(s, Assign)}
                defined.update(t_names & e_names)
        else:  # pragma: no cover - defensive
            raise TypeError(type(stmt))
    return out


def _copy_assign(stmt: Assign) -> Assign:
    s = Assign(stmt.target, clone(stmt.expr), stmt.dtype)
    s.line = stmt.line
    return s


def _store_keys(arm: list[Stmt]) -> list[tuple] | None:
    """Store signature of an arm: ordered (array, index-text) keys, or
    None if a location is stored more than once (order within the arm
    then matters in ways select-commit cannot express)."""
    from ..ir.printer import fmt_expr

    keys = [
        (s.array.name, fmt_expr(s.index)) for s in arm if isinstance(s, Store)
    ]
    return None if len(set(keys)) != len(keys) else keys


def _eligible(stmt: If, defined: set[str]) -> bool:
    arms = (stmt.then, stmt.orelse)
    if not stmt.then and not stmt.orelse:
        return False
    assigns: list[set[str]] = []
    for arm in arms:
        if not all(isinstance(s, (Assign, Store)) for s in arm):
            return False
        assigns.append({s.target for s in arm if isinstance(s, Assign)})
    # stores are only speculatable when both arms store the *same*
    # locations (the commit becomes one unconditional store of a
    # selected value — Fig 10's "*ptrVar =" pattern); the stored-to
    # arrays must also not be read by either arm (the speculative arm
    # would otherwise observe or miss the other's effect).
    tk, ek = _store_keys(stmt.then), _store_keys(stmt.orelse)
    if tk is None or ek is None or sorted(tk) != sorted(ek):
        return False
    # within an arm, no load may follow a store to the same array: the
    # commit defers the store, so such a load would observe stale data.
    for arm in arms:
        stored_so_far: set[str] = set()
        for s in arm:
            reads = {ld.array.name for ld in _arm_loads(s)}
            if reads & stored_so_far:
                return False
            if isinstance(s, Store):
                stored_so_far.add(s.array.name)
    t_set, e_set = assigns
    # neither arm may read what only the other arm writes
    for arm, other in ((stmt.then, e_set - t_set), (stmt.orelse, t_set - e_set)):
        for s in arm:
            if var_names(s.expr) & other:
                return False
    # single-arm temps need a fall-through value
    for name in t_set.symmetric_difference(e_set):
        if name not in defined:
            return False
    return True


def _arm_loads(s: Stmt):
    from ..ir.visitors import loads

    yield from loads(s.expr)
    if isinstance(s, Store):
        yield from loads(s.index)


def _speculate(
    stmt: If, defined: set[str], counter: list[int]
) -> list[Stmt]:
    counter[0] += 1
    k = counter[0]
    out: list[Stmt] = []

    cond_name = f"__sc{k}"
    cnd = Assign(cond_name, clone(stmt.cond))
    cnd.line = stmt.line
    out.append(cnd)

    def hoist_arm(arm: list[Stmt], tag: str):
        # reads of a temp before its first arm-local assignment keep the
        # original name (the pre-branch value); reads after it see the
        # renamed speculative version.
        env: dict[str, str] = {}
        stores: dict[tuple, tuple] = {}  # key -> (index_expr, value_name)
        for j, s in enumerate(arm):
            if isinstance(s, Assign):
                fresh = f"{s.target}__sp{tag}{k}_{j}"
                ns = Assign(fresh, _rename_reads(clone(s.expr), env), s.dtype)
                ns.line = s.line
                out.append(ns)
                env[s.target] = fresh
            else:  # Store: speculatively compute the value, commit later
                from ..ir.printer import fmt_expr

                key = (s.array.name, fmt_expr(s.index))
                vname = f"__spv{tag}{k}_{j}"
                nv = Assign(vname, _rename_reads(clone(s.expr), env),
                            s.array.dtype)
                nv.line = s.line
                out.append(nv)
                stores[key] = (
                    _rename_reads(clone(s.index), env),
                    vname,
                    s.array,
                    s.line,
                )
        return env, stores

    env_t, st_t = hoist_arm(stmt.then, "t")
    env_e, st_e = hoist_arm(stmt.orelse, "e")

    order: list[str] = []
    for s in stmt.then + stmt.orelse:
        if isinstance(s, Assign) and s.target not in order:
            order.append(s.target)
    cond_ref = VarRef(cond_name, cnd.dtype)
    for name in order:
        a_name = env_t.get(name, name)
        b_name = env_e.get(name, name)
        src = next(
            s for s in stmt.then + stmt.orelse
            if isinstance(s, Assign) and s.target == name
        )
        sel = Assign(
            name,
            Select(
                clone(cond_ref),
                VarRef(a_name, src.dtype),
                VarRef(b_name, src.dtype),
            ),
            src.dtype,
        )
        sel.line = stmt.line
        out.append(sel)
    # commit stores: one unconditional store per location, value (and,
    # if the arms' renames diverged, index) chosen by select (Fig 10).
    for key in st_t:
        idx_t, val_t, array, line = st_t[key]
        idx_e, val_e, _, _ = st_e[key]
        from ..ir.printer import fmt_expr

        if fmt_expr(idx_t) == fmt_expr(idx_e):
            index = idx_t
        else:
            index = Select(clone(cond_ref), idx_t, idx_e)
        st = Store(
            array,
            index,
            Select(
                clone(cond_ref),
                VarRef(val_t, array.dtype),
                VarRef(val_e, array.dtype),
            ),
        )
        st.line = line
        out.append(st)
    return out


def _rename_reads(expr, env: dict[str, str]):
    """Rename VarRef reads per ``env``, preserving each read's dtype."""
    if not env:
        return expr
    from ..ir.visitors import map_expr

    def fix(node):
        if isinstance(node, VarRef) and node.name in env:
            return VarRef(env[node.name], node.dtype)
        return None

    return map_expr(expr, fix)
