"""End-to-end compilation pipeline: ``parallelize(loop, n_cores)``.

Pass order (paper §III):

1. optional control-flow speculation (§III-H);
2. normalization — compound-expression splitting, predicate chains
   (§III-A preprocessing, §III-E analysis);
3. fiber extraction + code-graph construction (§III-A, §III-B);
4. cohesion for live-out temporaries (§III-F needs a unique source
   partition per live-out value);
5. merging down to ``n_cores`` partitions (§III-B);
6. communication planning (§III-D/E) and per-partition scheduling;
7. statistics (the Table III columns).

The result is a :class:`ParallelPlan`, which :mod:`repro.isa.lower`
turns into per-core machine programs (outlined functions + the §III-G
runtime protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.normalize import normalize
from ..ir.printer import fmt_loop
from ..ir.stmts import FlatBody, Loop
from ..obs.events import span
from .codegraph import CodeGraph, build_code_graph
from .comm import CommPlan, plan_communication
from .config import CompilerConfig
from .merge import Partition, load_balance_ratio, merge_partitions
from .schedule import PartitionSchedule, schedule_all
from .speculation import apply_speculation

__all__ = ["ParallelPlan", "PlanStats", "parallelize", "sequential_plan"]


@dataclass
class PlanStats:
    """Per-kernel compile-time statistics (paper Table III)."""

    initial_fibers: int
    data_deps: int
    load_balance: float
    com_ops: int
    queues_used: int
    hw_queues_used: int
    n_partitions: int
    partition_costs: list[float] = field(default_factory=list)
    partition_ops: list[int] = field(default_factory=list)

    def as_row(self) -> dict:
        return {
            "initial_fibers": self.initial_fibers,
            "data_deps": self.data_deps,
            "load_balance": round(self.load_balance, 2),
            "com_ops": self.com_ops,
            "queues": self.queues_used,
        }


@dataclass
class ParallelPlan:
    """Everything needed to emit and simulate the transformed kernel."""

    loop: Loop
    body: FlatBody
    n_cores: int
    config: CompilerConfig
    graph: CodeGraph
    partitions: list[Partition]
    schedules: list[PartitionSchedule]
    comm: CommPlan
    stats: PlanStats

    @property
    def primary_pid(self) -> int:
        """The partition the primary core runs inline (§III-G)."""
        return 0


def parallelize(
    loop: Loop,
    n_cores: int,
    config: CompilerConfig | None = None,
    obs=None,
) -> ParallelPlan:
    """Transform a sequential loop into an ``n_cores``-way fine-grained
    parallel plan.

    With ``config.speculation`` the §III-H transform is applied as a
    *code version*: when profiling is enabled the speculated and
    non-speculated variants are both compiled and the faster one is
    kept — the multi-version + dynamic-feedback scheme of §III-I
    (limitation 1).
    """
    if n_cores < 1:
        raise ValueError("n_cores must be >= 1")
    config = config or CompilerConfig()

    if config.speculation:
        with span(obs, "speculate"):
            spec_loop = apply_speculation(loop)
        plan_spec = _compile_one(spec_loop, n_cores, config, obs)
        if fmt_loop(spec_loop) == fmt_loop(loop) or not config.autotune:
            return plan_spec
        plan_base = _compile_one(loop, n_cores, config, obs)
        with span(obs, "profile-versions"):
            c_spec = _profile_plan(plan_spec, config)
            c_base = _profile_plan(plan_base, config)
        return plan_spec if c_spec <= c_base else plan_base
    return _compile_one(loop, n_cores, config, obs)


def _compile_one(
    work: Loop,
    n_cores: int,
    config: CompilerConfig,
    obs=None,
) -> ParallelPlan:
    with span(obs, "normalize"):
        body = normalize(work, max_height=config.max_expr_height)
    with span(obs, "codegraph"):
        graph = build_code_graph(body)

    # §III-F: each live-out temporary needs a single source partition so
    # the copy-out at loop exit has one sender.
    fs = graph.fiberset
    for name in work.live_out:
        group = {
            fs.fiber_of(fs.root_op[st.sid]).fid
            for st in body.stmts
            if st.target == name
        }
        if len(group) > 1:
            graph.cohesion.append(group)

    with span(obs, "merge"):
        merged = merge_partitions(graph, n_cores, config)
    candidates = [merged]
    if config.refine and len(merged) > 1:
        from .refine import refine_partitions

        with span(obs, "refine"):
            refined = refine_partitions(graph, merged, config)
        if _assignment_of(refined) != _assignment_of(merged):
            candidates.append(refined)
        # NOTE: adding a communication-averse candidate (refined against
        # a pessimistic latency) lifts the Fig 12 average to the paper's
        # 2.05 but flattens the Fig 13 sensitivity curve the paper
        # emphasises — the compiler becomes smarter than the one under
        # study.  We keep the faithful pipeline here; experiment E10
        # quantifies what the extra candidate would buy.

    if config.max_queues is not None:
        with span(obs, "queue-limit"):
            candidates = [
                _enforce_queue_limit(c, graph, body, config.max_queues)
                for c in candidates
            ]

    partitions = candidates[0]
    with span(obs, "comm"):
        comm = plan_communication(graph, partitions, body)
    with span(obs, "schedule"):
        schedules = schedule_all(partitions, graph, comm)
    if len(candidates) > 1 and config.autotune:
        with span(obs, "autotune"):
            best = None
            for cand in candidates:
                c_comm = plan_communication(graph, cand, body)
                c_sched = schedule_all(cand, graph, c_comm)
                cand_plan = _bare_plan(work, body, n_cores, config, graph,
                                       cand, c_sched, c_comm)
                cycles = _profile_plan(cand_plan, config)
                if best is None or cycles < best[0]:
                    best = (cycles, cand, c_comm, c_sched)
            _, partitions, comm, schedules = best

    stats = PlanStats(
        initial_fibers=fs.n_initial_fibers,
        data_deps=graph.n_data_deps,
        load_balance=load_balance_ratio(partitions),
        com_ops=comm.n_com_ops,
        queues_used=comm.queues_used,
        hw_queues_used=comm.hw_queues_used,
        n_partitions=len(partitions),
        partition_costs=[p.cost for p in partitions],
        partition_ops=[p.n_compute_ops for p in partitions],
    )
    return ParallelPlan(
        loop=work,
        body=body,
        n_cores=n_cores,
        config=config,
        graph=graph,
        partitions=partitions,
        schedules=schedules,
        comm=comm,
        stats=stats,
    )


def _assignment_of(partitions: list[Partition]) -> frozenset:
    return frozenset(p.fids for p in partitions)


def _enforce_queue_limit(
    partitions: list[Partition],
    graph: CodeGraph,
    body: FlatBody,
    max_queues: int,
) -> list[Partition]:
    """§II queue-count constraint: while the plan needs more directed
    core pairs than available, fuse the pair of partitions exchanging
    the most transfers (removing their queues entirely)."""
    parts = partitions
    while len(parts) > 1:
        comm = plan_communication(graph, parts, body)
        if comm.queues_used <= max_queues:
            return parts
        traffic: dict[tuple[int, int], int] = {}
        for t in comm.transfers:
            key = (min(t.src_pid, t.dst_pid), max(t.src_pid, t.dst_pid))
            traffic[key] = traffic.get(key, 0) + 1
        (a, b), _ = max(traffic.items(), key=lambda kv: (kv[1], -kv[0][0], -kv[0][1]))
        merged_ops = sorted(
            [*parts[a].ops, *parts[b].ops], key=lambda o: o.rank
        )
        fused = Partition(
            pid=0,
            fids=parts[a].fids | parts[b].fids,
            ops=merged_ops,
            cost=parts[a].cost + parts[b].cost,
            n_compute_ops=parts[a].n_compute_ops + parts[b].n_compute_ops,
        )
        remaining = [p for i, p in enumerate(parts) if i not in (a, b)] + [fused]
        remaining.sort(key=lambda p: min(op.rank for op in p.ops))
        parts = [
            Partition(
                pid=i, fids=p.fids, ops=p.ops, cost=p.cost,
                n_compute_ops=p.n_compute_ops,
            )
            for i, p in enumerate(remaining)
        ]
    return parts


def _bare_plan(
    loop: Loop,
    body: FlatBody,
    n_cores: int,
    config: CompilerConfig,
    graph: CodeGraph,
    partitions: list[Partition],
    schedules: list[PartitionSchedule],
    comm: CommPlan,
) -> ParallelPlan:
    stats = PlanStats(
        initial_fibers=0, data_deps=0, load_balance=1.0, com_ops=0,
        queues_used=0, hw_queues_used=0, n_partitions=len(partitions),
    )
    return ParallelPlan(
        loop=loop, body=body, n_cores=n_cores, config=config, graph=graph,
        partitions=partitions, schedules=schedules, comm=comm, stats=stats,
    )


def _profile_plan(plan: ParallelPlan, config: CompilerConfig) -> float:
    """Simulate a short synthetic profile run of one candidate plan and
    return its cycle count (infinity on deadlock/failure).

    This is the §III-I "profile directed feedback mechanism": the
    compiler cannot statically predict execution time, so it measures.
    """
    # local imports: isa/runtime import compiler.pipeline at module load
    from ..isa.lower import lower_plan
    from ..runtime.exec import execute_kernel
    from ..sim.machine import MachineParams
    from ..workload import random_workload

    try:
        kern = lower_plan(plan)
        if config.profile_workload is not None:
            wl = config.profile_workload.copy()
            wl.scalars[plan.loop.trip] = config.autotune_trip
        else:
            wl = random_workload(plan.loop, trip=config.autotune_trip, seed=7)
        res = execute_kernel(
            kern, wl,
            MachineParams(queue_latency=config.assumed_queue_latency),
        )
        return res.cycles
    except Exception:
        return float("inf")


def sequential_plan(loop: Loop, config: CompilerConfig | None = None) -> ParallelPlan:
    """Single-partition plan: the sequential baseline lowered through
    the same back end (no queues, no speculation)."""
    cfg = config or CompilerConfig()
    base = CompilerConfig(
        max_expr_height=cfg.max_expr_height,
        weights=cfg.weights,
        cost=cfg.cost,
    )
    return parallelize(loop, 1, base)
