"""The fine-grained parallelizing compiler (paper §III).

Public entry points:

* :func:`parallelize` — full pipeline, sequential loop → N-core plan;
* :func:`sequential_plan` — single-core baseline through the same back
  end;
* :class:`CompilerConfig` / :class:`MergeWeights` — the knobs the
  paper's evaluation varies.
"""

from .codegraph import CodeGraph, DepEdge, build_code_graph
from .comm import CommPlan, Transfer, plan_communication
from .config import CompilerConfig, MergeWeights
from .fibers import Fiber, FiberSet, Op, extract_fibers
from .merge import Partition, load_balance_ratio, merge_partitions
from .pipeline import ParallelPlan, PlanStats, parallelize, sequential_plan
from .schedule import EmitItem, PartitionSchedule, ScheduleError, schedule_all
from .speculation import apply_speculation

__all__ = [
    "CodeGraph", "CommPlan", "CompilerConfig", "DepEdge", "EmitItem",
    "Fiber", "FiberSet", "MergeWeights", "Op", "ParallelPlan",
    "Partition", "PartitionSchedule", "PlanStats", "ScheduleError",
    "Transfer", "apply_speculation", "build_code_graph", "extract_fibers",
    "load_balance_ratio", "merge_partitions", "parallelize",
    "plan_communication", "schedule_all", "sequential_plan",
]
