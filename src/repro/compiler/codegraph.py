"""Code-graph construction (paper §III-B).

"Once fibers have been identified, a graph (called the code graph) is
built.  Each node in this code graph represents a fiber.  Edges between
nodes represent data and control dependences between code sections that
correspond to node fibers.  These dependences are determined from
information gathered in our compiler framework, including use-def
analysis, aliasing information, and dependence vectors."

Edge kinds:

* ``intra``  — a fiber consumes the value produced by another fiber of
  the *same* statement (tree edges across fiber boundaries, Fig 4);
* ``value``  — scalar def-use between statements (reaching defs);
* ``mem``    — same-iteration memory ordering (store→load / store→store);
* ``ctrl``   — a statement is guarded by a condition computed elsewhere.

Loop-carried dependences (reduction temporaries, cross-iteration memory
conflicts) cannot be expressed as per-iteration queue transfers; the
fibers involved are recorded as *cohesion groups* which the merge pass
unions up-front, keeping them on a single core (where ordinary
sequential execution of iterations preserves their order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.alias import ConflictKind, classify_conflict
from ..analysis.reachdefs import reaching_defs
from ..ir.nodes import Load, VarRef
from ..ir.stmts import FlatBody
from ..ir.types import DType, VClass
from .fibers import Fiber, FiberSet, Op, consumed_leaves, extract_fibers, interior_operands


@dataclass(eq=False)
class DepEdge:
    """A dependence between two ops (and hence between their fibers)."""

    kind: str                 # intra | value | mem | ctrl
    producer: Op
    consumer: Op
    var: Optional[str]        # register name transferred (None for mem)
    dtype: Optional[DType]    # dtype of the transferred value

    @property
    def vclass(self) -> VClass:
        if self.kind == "mem":
            return VClass.GPR  # synchronisation token
        return self.dtype.vclass

    def __repr__(self) -> str:
        return (
            f"DepEdge({self.kind}, S{self.producer.sid}->S{self.consumer.sid}"
            f", {self.var})"
        )


@dataclass
class CodeGraph:
    fiberset: FiberSet
    edges: list[DepEdge] = field(default_factory=list)
    #: groups of fiber ids that must end up in the same partition.
    cohesion: list[set[int]] = field(default_factory=list)

    @property
    def fibers(self) -> list[Fiber]:
        return self.fiberset.fibers

    def fiber_pairs(self) -> dict[tuple[int, int], int]:
        """Count of dependence edges between each unordered fiber pair
        (the §III-B "greater number of dependence edges" heuristic)."""
        counts: dict[tuple[int, int], int] = {}
        fs = self.fiberset
        for e in self.edges:
            fa = fs.fiber_of(e.producer).fid
            fb = fs.fiber_of(e.consumer).fid
            if fa == fb:
                continue
            key = (min(fa, fb), max(fa, fb))
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def n_data_deps(self) -> int:
        """Table III "Data Deps": data dependences between initial
        fibers (intra/value/mem edges crossing fiber boundaries)."""
        fs = self.fiberset
        n = 0
        for e in self.edges:
            if e.kind == "ctrl":
                continue
            if fs.fiber_of(e.producer) is not fs.fiber_of(e.consumer):
                n += 1
        return n


def build_code_graph(body: FlatBody) -> CodeGraph:
    """Extract fibers and assemble the dependence graph."""
    fs = extract_fibers(body)
    graph = CodeGraph(fiberset=fs)
    _add_intra_edges(graph)
    _add_value_edges(graph, body)
    _add_mem_edges(graph, body)
    _add_ctrl_edges(graph, body)
    _add_carried_cohesion(graph, body)
    return graph


# ----------------------------------------------------------------------
# Edge builders
# ----------------------------------------------------------------------

def _add_intra_edges(graph: CodeGraph) -> None:
    fs = graph.fiberset
    for op in fs.ops:
        for child in interior_operands(op):
            prod = fs.op_of_node[(op.sid, child.nid)]
            if fs.fiber_of(prod) is fs.fiber_of(op):
                continue
            graph.edges.append(
                DepEdge(
                    kind="intra",
                    producer=prod,
                    consumer=op,
                    var=prod.value_name,
                    dtype=child.dtype,
                )
            )


def _ops_by_sid(fs: FiberSet) -> dict[int, list[Op]]:
    index: dict[int, list[Op]] = {}
    for op in fs.ops:
        index.setdefault(op.sid, []).append(op)
    return index


def _consumers_of_var(stmt_ops: list[Op], var: str) -> list[Op]:
    """Ops of one statement that read scalar ``var`` as a leaf
    (directly, through a Load index, or via the store index)."""
    out: list[Op] = []
    for op in stmt_ops:
        for leaf in consumed_leaves(op):
            if isinstance(leaf, VarRef) and leaf.name == var:
                out.append(op)
                break
            if isinstance(leaf, Load) and isinstance(leaf.index, VarRef) \
                    and leaf.index.name == var:
                out.append(op)
                break
    return out


def _add_value_edges(graph: CodeGraph, body: FlatBody) -> None:
    fs = graph.fiberset
    by_sid = _ops_by_sid(fs)
    for use in reaching_defs(body):
        consumers = _consumers_of_var(by_sid.get(use.sid, []), use.var)
        for def_sid in use.defs:
            prod = fs.root_op[def_sid]
            dtype = body.stmt(def_sid).dtype
            for cons in consumers:
                graph.edges.append(
                    DepEdge(
                        kind="value",
                        producer=prod,
                        consumer=cons,
                        var=use.var,
                        dtype=dtype,
                    )
                )


@dataclass(frozen=True)
class _Access:
    op_id: int       # index into fs.ops
    is_store: bool
    array_name: str


def _add_mem_edges(graph: CodeGraph, body: FlatBody) -> None:
    fs = graph.fiberset
    loop_index = body.index

    # collect (op, is_store, array, index_expr) for all memory accesses
    accesses: list[tuple[Op, bool, object, object]] = []
    for op in fs.ops:
        if op.kind == "store":
            accesses.append((op, True, op.stmt.array, op.stmt.index))
        for leaf in consumed_leaves(op):
            if isinstance(leaf, Load):
                accesses.append((op, False, leaf.array, leaf.index))

    for ai in range(len(accesses)):
        op_a, st_a, arr_a, idx_a = accesses[ai]
        for bi in range(ai + 1, len(accesses)):
            op_b, st_b, arr_b, idx_b = accesses[bi]
            if not (st_a or st_b):
                continue  # load-load never conflicts
            kind = classify_conflict(arr_a, idx_a, arr_b, idx_b, loop_index)
            if kind is ConflictKind.NONE:
                continue
            same_stmt = op_a.sid == op_b.sid
            first, second = (op_a, op_b) if op_a.rank < op_b.rank else (op_b, op_a)
            # within one statement, same-iteration order is implied by
            # the tree structure — but *cross-iteration* conflicts
            # (e.g. ``a[i+1] = a[i] * 0.5``) still force cohesion below.
            if same_stmt and kind is ConflictKind.SAME_ITER:
                continue
            if not same_stmt and kind in (ConflictKind.SAME_ITER, ConflictKind.BOTH):
                graph.edges.append(
                    DepEdge(
                        kind="mem", producer=first, consumer=second,
                        var=None, dtype=None,
                    )
                )
            if kind in (ConflictKind.CARRIED, ConflictKind.BOTH):
                graph.cohesion.append(
                    {fs.fiber_of(op_a).fid, fs.fiber_of(op_b).fid}
                )


def _add_ctrl_edges(graph: CodeGraph, body: FlatBody) -> None:
    fs = graph.fiberset
    cond_def: dict[str, int] = {
        s.target: s.sid for s in body.stmts if s.kind == "cond"
    }
    by_sid = _ops_by_sid(fs)
    for st in body.stmts:
        for cond_name, _ in st.pred:
            def_sid = cond_def[cond_name]
            prod = fs.root_op[def_sid]
            dtype = body.stmt(def_sid).dtype
            seen: set[int] = set()
            for op in by_sid.get(st.sid, []):
                fib = fs.fiber_of(op)
                if fib.fid in seen:
                    continue
                seen.add(fib.fid)
                graph.edges.append(
                    DepEdge(
                        kind="ctrl",
                        producer=prod,
                        consumer=op,
                        var=cond_name,
                        dtype=dtype,
                    )
                )


def _add_carried_cohesion(graph: CodeGraph, body: FlatBody) -> None:
    """Fibers touching a loop-carried temporary must co-reside."""
    fs = graph.fiberset
    by_sid = _ops_by_sid(fs)
    for var in sorted(body.carried):
        group: set[int] = set()
        for st in body.stmts:
            if st.target == var:
                group.add(fs.fiber_of(fs.root_op[st.sid]).fid)
            for op in by_sid.get(st.sid, []):
                for leaf in consumed_leaves(op):
                    if isinstance(leaf, VarRef) and leaf.name == var:
                        group.add(fs.fiber_of(op).fid)
                    elif (
                        isinstance(leaf, Load)
                        and isinstance(leaf.index, VarRef)
                        and leaf.index.name == var
                    ):
                        group.add(fs.fiber_of(op).fid)
        if len(group) > 1:
            graph.cohesion.append(group)
