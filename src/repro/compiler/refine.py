"""Partition refinement by static makespan estimation.

The greedy pair-merging of §III-B has no global view: it can leave the
critical dependence chain zig-zagging between cores, putting a full
queue round-trip on every iteration's critical path (in-order cores
cannot start iteration *i+1* before finishing iteration *i*, so
cross-core round trips are not hidden by pipelining).

This pass estimates the per-iteration makespan of a candidate
partitioning with a one-pass static schedule — per-core sequential
execution in global rank order, cross-core value edges adding
``enqueue + transfer-latency + dequeue`` — and greedily moves merge
units (fibers, or whole cohesion groups) between partitions while the
estimate improves.  It plays the role the paper assigns to
profile-directed feedback (§III-I limitation 3: "the compiler is unable
to accurately estimate execution time, and it needs to use a profile
directed feedback mechanism for this").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.cost import CostModel
from .codegraph import CodeGraph
from .config import CompilerConfig
from .fibers import Op, consumed_leaves
from .merge import Partition


def _op_cost(op: Op, cost: CostModel) -> float:
    if op.kind == "expr":
        c = cost.op_cost(op.node)
    elif op.kind == "store":
        c = float(cost.lat.store)
    else:
        c = float(cost.lat.mov)
    for leaf in consumed_leaves(op):
        c += cost.leaf_cost(leaf)
    return c


@dataclass
class _Est:
    """Precomputed structures for fast makespan estimation."""

    ops: list[Op]                     # rank order
    op_pos: dict[int, int]            # id(op) -> index
    costs: list[float]
    preds: list[list[int]]            # op index -> producer op indices
    fiber_of: list[int]               # op index -> unit id
    units: list[list[int]]            # unit id -> op indices


def _prepare(graph: CodeGraph, cost: CostModel) -> _Est:
    fs = graph.fiberset
    ops = sorted(fs.ops, key=lambda o: o.rank)
    op_pos = {id(o): k for k, o in enumerate(ops)}
    costs = [_op_cost(o, cost) for o in ops]
    preds: list[list[int]] = [[] for _ in ops]
    for e in graph.edges:
        a = op_pos[id(e.producer)]
        b = op_pos[id(e.consumer)]
        if a != b:
            preds[b].append(a)
    # units: initial cohesion-closed fiber groups
    parent: dict[int, int] = {f.fid: f.fid for f in fs.fibers}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for group in graph.cohesion:
        members = sorted(group)
        for other in members[1:]:
            ra, rb = find(members[0]), find(other)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
    unit_ids: dict[int, int] = {}
    units: list[list[int]] = []
    fiber_of: list[int] = [0] * len(ops)
    for k, op in enumerate(ops):
        root = find(fs.fiber_of(op).fid)
        uid = unit_ids.get(root)
        if uid is None:
            uid = len(units)
            unit_ids[root] = uid
            units.append([])
        units[uid].append(k)
        fiber_of[k] = uid
    return _Est(ops=ops, op_pos=op_pos, costs=costs, preds=preds,
                fiber_of=fiber_of, units=units)


def _makespan(est: _Est, assign: list[int], n_parts: int, comm_cost: float) -> float:
    """Static per-iteration schedule length.

    One pass in global rank order (every dependence edge is
    rank-forward): an op starts when its core is free and all its
    producers' values have arrived (+ comm cost when cross-core).
    """
    core_free = [0.0] * n_parts
    finish = [0.0] * len(est.ops)
    fiber_of = est.fiber_of
    for k in range(len(est.ops)):
        p = assign[fiber_of[k]]
        start = core_free[p]
        for a in est.preds[k]:
            pa = assign[fiber_of[a]]
            arrive = finish[a] + (comm_cost if pa != p else 0.0)
            if arrive > start:
                start = arrive
        f = start + est.costs[k]
        finish[k] = f
        core_free[p] = f
    return max(core_free)


def refine_partitions(
    graph: CodeGraph,
    partitions: list[Partition],
    config: CompilerConfig,
    max_units: int = 192,
    max_passes: int = 3,
) -> list[Partition]:
    """Greedy unit moves while the makespan estimate improves."""
    n_parts = len(partitions)
    if n_parts < 2:
        return partitions
    cost = config.cost
    est = _prepare(graph, cost)
    if len(est.units) > max_units:
        return partitions

    comm_cost = (
        cost.lat.enqueue + cost.lat.dequeue + config.assumed_queue_latency
    )

    # current assignment: unit -> pid (units never straddle partitions:
    # merge unions cohesion groups first)
    fs = graph.fiberset
    pid_of_op: dict[int, int] = {}
    for part in partitions:
        for op in part.ops:
            pid_of_op[id(op)] = part.pid
    assign = [0] * len(est.units)
    for uid, members in enumerate(est.units):
        assign[uid] = pid_of_op[id(est.ops[members[0]])]

    best = _makespan(est, assign, n_parts, comm_cost)
    for _ in range(max_passes):
        improved = False
        for uid in range(len(est.units)):
            home = assign[uid]
            best_pid, best_score = home, best
            for pid in range(n_parts):
                if pid == home:
                    continue
                assign[uid] = pid
                score = _makespan(est, assign, n_parts, comm_cost)
                if score < best_score - 1e-9:
                    best_pid, best_score = pid, score
            assign[uid] = best_pid
            if best_pid != home:
                best = best_score
                improved = True
        if not improved:
            break

    # rebuild partitions (keep pid identities; drop now-empty ones)
    groups: dict[int, list[Op]] = {}
    fid_sets: dict[int, set[int]] = {}
    for uid, members in enumerate(est.units):
        pid = assign[uid]
        groups.setdefault(pid, []).extend(est.ops[k] for k in members)
        fid_sets.setdefault(pid, set()).update(
            fs.fiber_of(est.ops[k]).fid for k in members
        )
    ordered = sorted(
        groups.items(), key=lambda kv: min(op.rank for op in kv[1])
    )
    out: list[Partition] = []
    for new_pid, (old_pid, ops) in enumerate(ordered):
        ops_sorted = sorted(ops, key=lambda o: o.rank)
        out.append(
            Partition(
                pid=new_pid,
                fids=frozenset(fid_sets[old_pid]),
                ops=ops_sorted,
                cost=sum(_op_cost(o, cost) for o in ops_sorted),
                n_compute_ops=sum(1 for o in ops_sorted if o.kind == "expr"),
            )
        )
    return out
