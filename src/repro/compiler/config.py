"""Compiler configuration knobs.

Defaults correspond to the configuration the paper evaluates in Fig 12 /
Table III; the ablation experiments (E5–E9 in DESIGN.md) vary these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.cost import CostModel


@dataclass
class MergeWeights:
    """Relative weights of the §III-B affinity heuristics."""

    #: "higher affinity to node pairs with greater number of dependence
    #: edges between them"
    dep_edges: float = 1.0
    #: "higher affinity to node pairs with smaller compute time"
    small_time: float = 0.6
    #: "higher affinity to node pairs whose code sections have greater
    #: proximity in the serial source code"
    proximity: float = 0.3


@dataclass
class CompilerConfig:
    """Options for :func:`repro.compiler.pipeline.parallelize`."""

    #: op-height bound for compound-expression splitting (§III-A).
    max_expr_height: int = 2
    #: affinity heuristic weights (§III-B).
    weights: MergeWeights = field(default_factory=MergeWeights)
    #: merge several disjoint best pairs per step instead of one
    #: ("faster compilation ... useful when there are a large number of
    #: fibers", §III-B).
    multi_pair_merge: bool = False
    #: constrain partitioning to unidirectional dependences between any
    #: two final nodes — the "throughput heuristic" the paper found to
    #: cost 11% on average (§III-B).
    throughput_heuristic: bool = False
    #: §II: "When the number of available queues is limited, we can
    #: constrain the partitioning so that compiled code uses at most a
    #: specific number of queues."  Counts directed core pairs (the
    #: paper's Table III metric); None = unconstrained.
    max_queues: int | None = None
    #: apply rollback-free control-flow speculation (§III-H, Fig 14).
    speculation: bool = False
    #: refine partitions with the static-makespan hill climber (the
    #: profile-directed-feedback analog of §III-I limitation 3).
    refine: bool = True
    #: profile-directed candidate selection: simulate a short synthetic
    #: run of each candidate partitioning (merged vs. refined) and keep
    #: the faster one — the paper's "profile directed feedback
    #: mechanism" (§III-I limitation 3).
    autotune: bool = True
    #: iterations of the autotune profile run.
    autotune_trip: int = 12
    #: representative input for the profile runs (the paper's profiling
    #: data came from real application runs on Blue Gene).  ``None``
    #: falls back to a synthetic random workload.
    profile_workload: object | None = None
    #: queue transfer latency the *compiler* assumes when estimating
    #: schedules (the machine's actual latency may differ — Fig 13
    #: varies the hardware while compiled code stays fixed).
    assumed_queue_latency: int = 5
    #: cost model (fixed op latencies + profile-fed memory latencies).
    cost: CostModel = field(default_factory=CostModel)
    #: deterministic tie-breaking seed for the merge ordering.
    seed: int = 0
    #: §III-G runtime flavour of the lowered artifact.  ``"static"``
    #: pins fiber ``p`` to core ``p`` at compile time (the paper's
    #: dispatch: one ``Imm`` function index per secondary).  With
    #: ``"stealing"`` every secondary core carries the *full* fiber
    #: table and the primary dispatches a function index read from a
    #: preloaded ``__fib<core>`` register, so the fiber→core placement
    #: becomes an execute-time choice (the adaptive runtime migrates
    #: fibers by re-preloading those registers — no recompile).
    runtime_mode: str = "static"
    #: simulator back end used when executing the compiled kernel.
    #: ``"reference"`` is the per-instruction interpreter
    #: (:class:`repro.sim.core.Core`); ``"specialized"`` pre-compiles
    #: each program into a generator closure (:mod:`repro.sim.fast`);
    #: ``"batched"`` advances many sweep cells in numpy lockstep.  All
    #: three are bit-identical by contract, so this field is excluded
    #: from store keys (see :mod:`repro.store.keys`).
    sim_mode: str = "reference"
