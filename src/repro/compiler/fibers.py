"""Fiber extraction (paper §III-A, Fig 4).

A *fiber* is "a sequence of instructions without any control flow or
memory carried dependences among its instructions".  The partitioning
algorithm works on the expression tree of each statement:

    Initially, all nodes in an expression tree are unassigned to any
    fiber.  Leaf nodes, i.e. memory loads or literal values, are
    treated as live-ins and they always remain unassigned.  We perform
    a post-order traversal of the expression tree, and handle the
    following three cases:

    - all children of the current node are unassigned: start new fiber
      for the current node;
    - all assigned children of the current node belong to the same
      fiber: continue with the same fiber for the current node;
    - children of the current node are assigned to more than one fiber:
      start a new fiber for the current node.

Statements get a pseudo *root op* when the tree alone cannot represent
the statement's effect: ``store`` roots (the memory write) and ``move``
roots (assignments whose right-hand side is a single leaf).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..ir.nodes import Expr
from ..ir.stmts import FlatBody, FlatStmt, PredChain


@dataclass(eq=False)
class Op:
    """One operation instance: an interior tree node, or a pseudo root.

    ``kind`` is ``"expr"`` (interior node), ``"move"`` (leaf-expr
    assignment) or ``"store"`` (memory write).  ``writes`` names the
    scalar temporary this op defines, if any (stmt roots of
    assign/cond statements).  ``value_name`` is the register that holds
    this op's result (equals ``writes`` when set).
    """

    sid: int
    pos: int                      # post-order position within the stmt
    kind: str
    node: Optional[Expr]          # interior Expr node ("expr" kind)
    stmt: FlatStmt
    writes: Optional[str] = None

    @property
    def rank(self) -> tuple[int, int]:
        """Global topological rank: flattened-order position.  Every
        dependence edge in the code graph goes rank-forward, which is
        what makes consistent cross-core FIFO schedules possible."""
        return (self.sid, self.pos)

    @property
    def pred(self) -> PredChain:
        return self.stmt.pred

    @property
    def value_name(self) -> Optional[str]:
        if self.writes is not None:
            return self.writes
        if self.kind == "expr":
            return f"v{self.sid}_{self.node.nid}"
        return None  # stores produce no register value

    def __repr__(self) -> str:
        tag = self.writes or (f"n{self.node.nid}" if self.node is not None else "st")
        return f"Op(S{self.sid}:{self.kind}:{tag})"


@dataclass(eq=False)
class Fiber:
    """A chain of ops from one statement, mapped to one code-graph node."""

    fid: int
    sid: int
    ops: list[Op] = field(default_factory=list)
    is_root: bool = False  # contains the statement's root op

    @property
    def pred(self) -> PredChain:
        return self.ops[0].pred

    @property
    def line(self) -> int:
        return self.ops[0].stmt.line

    def __repr__(self) -> str:
        return f"Fiber(f{self.fid}, S{self.sid}, {len(self.ops)} ops)"


@dataclass
class FiberSet:
    """All fibers of a flat body plus the op/fiber indexes the code
    graph builder needs."""

    body: FlatBody
    fibers: list[Fiber]
    ops: list[Op]                          # all ops, rank order
    op_of_node: dict[tuple[int, int], Op]  # (sid, nid) -> Op
    fiber_of_op: dict[int, Fiber]          # id(op) -> fiber
    root_op: dict[int, Op]                 # sid -> root op of stmt

    def fiber_of(self, op: Op) -> Fiber:
        return self.fiber_of_op[id(op)]

    def stmt_fibers(self, sid: int) -> list[Fiber]:
        return [f for f in self.fibers if f.sid == sid]

    @property
    def n_initial_fibers(self) -> int:
        """The paper's Table III "Initial Fibers" statistic."""
        return len(self.fibers)


def _number_nodes(root: Expr) -> list[Expr]:
    """Assign post-order nids to interior nodes; Loads are leaves (their
    index subtree is not descended — by normalization it is a leaf)."""
    order: list[Expr] = []

    def walk(n: Expr) -> None:
        if n.is_leaf:
            return
        for c in n.children():
            walk(c)
        n.nid = len(order)
        order.append(n)

    walk(root)
    return order


def extract_fibers(body: FlatBody) -> FiberSet:
    """Partition every statement's tree into fibers (paper §III-A)."""
    fibers: list[Fiber] = []
    all_ops: list[Op] = []
    op_of_node: dict[tuple[int, int], Op] = {}
    fiber_of_op: dict[int, Fiber] = {}
    root_op: dict[int, Op] = {}

    def new_fiber(sid: int) -> Fiber:
        f = Fiber(fid=len(fibers), sid=sid)
        fibers.append(f)
        return f

    for st in body.stmts:
        interior = _number_nodes(st.expr)
        node_fiber: dict[int, Fiber] = {}  # nid -> fiber
        pos = 0
        for node in interior:
            op = Op(sid=st.sid, pos=pos, kind="expr", node=node, stmt=st)
            pos += 1
            assigned = [
                node_fiber[c.nid] for c in node.children() if not c.is_leaf
            ]
            if not assigned:
                fib = new_fiber(st.sid)
            elif all(f is assigned[0] for f in assigned):
                fib = assigned[0]
            else:
                fib = new_fiber(st.sid)
            fib.ops.append(op)
            node_fiber[node.nid] = fib
            all_ops.append(op)
            op_of_node[(st.sid, node.nid)] = op
            fiber_of_op[id(op)] = fib

        # Root handling --------------------------------------------------
        if st.is_store:
            op = Op(sid=st.sid, pos=pos, kind="store", node=None, stmt=st)
            if interior:
                fib = node_fiber[st.expr.nid]  # single assigned child
            else:
                fib = new_fiber(st.sid)
            fib.ops.append(op)
            all_ops.append(op)
            fiber_of_op[id(op)] = fib
            root_op[st.sid] = op
            fib.is_root = True
        elif interior:
            # the tree root op *is* the statement root; it writes the temp
            root = op_of_node[(st.sid, st.expr.nid)]
            root.writes = st.target
            root_op[st.sid] = root
            fiber_of_op[id(root)].is_root = True
        else:
            # pure move: t = <leaf>
            op = Op(
                sid=st.sid, pos=pos, kind="move", node=None, stmt=st,
                writes=st.target,
            )
            fib = new_fiber(st.sid)
            fib.ops.append(op)
            all_ops.append(op)
            fiber_of_op[id(op)] = fib
            root_op[st.sid] = op
            fib.is_root = True

    return FiberSet(
        body=body,
        fibers=fibers,
        ops=all_ops,
        op_of_node=op_of_node,
        fiber_of_op=fiber_of_op,
        root_op=root_op,
    )


def consumed_leaves(op: Op) -> Iterator[Expr]:
    """Leaf operands materialised by ``op`` (loads/consts/varrefs for an
    expr op; the store's value/index leaves; the move's source leaf)."""
    if op.kind == "expr":
        for c in op.node.children():
            if c.is_leaf:
                yield c
    elif op.kind == "store":
        if op.stmt.expr.is_leaf:
            yield op.stmt.expr
        yield op.stmt.index
    elif op.kind == "move":
        yield op.stmt.expr


def interior_operands(op: Op) -> Iterator[Expr]:
    """Interior child nodes whose values ``op`` consumes."""
    if op.kind == "expr":
        for c in op.node.children():
            if not c.is_leaf:
                yield c
    elif op.kind == "store":
        if not op.stmt.expr.is_leaf:
            yield op.stmt.expr
    # moves have only a leaf operand
