"""Per-partition instruction scheduling (paper §III-B last paragraph).

"We optimize this code by re-arranging and interleaving code
instructions such that instructions producing values to be communicated
to other cores execute as early as possible, and instructions that
depend on values obtained from other cores execute as late as
possible."

Each partition's work items — its ops, its enqueues and its dequeues —
form a DAG; list scheduling orders them with send-feeding chains first
and dequeues placed just-in-time before their consumers.  Constraints:

1. intra-partition dependence edges (value/intra/mem/ctrl);
2. an enqueue follows the op producing its value;
3. a dequeue precedes every consumer of the received value;
4. FIFO consistency: items using the same hardware queue keep the
   globally agreed order (:attr:`Transfer.order_key`), so sender and
   receiver never disagree on which value a slot holds;
5. register hazards: accesses to a multiply-written register stay in
   flattened-program order;
6. predicate availability: a guarded item follows the local definition
   point (computation or dequeue) of every condition in its chain.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..ir.nodes import Load, VarRef
from ..ir.stmts import PredChain
from .codegraph import CodeGraph
from .comm import CommPlan, Transfer
from .fibers import Op, consumed_leaves
from .merge import Partition


class ScheduleError(RuntimeError):
    """A partition's constraint graph is unschedulable (cycle)."""


@dataclass(eq=False)
class EmitItem:
    """One entry of a partition's emission order."""

    kind: str                       # 'op' | 'enq' | 'deq'
    pred: PredChain
    op: Optional[Op] = None         # for 'op'
    transfer: Optional[Transfer] = None  # for 'enq'/'deq'

    @property
    def rank(self) -> tuple:
        if self.kind == "op":
            return (*self.op.rank, 0)
        if self.kind == "enq":
            return (*self.transfer.rank, 1, self.transfer.tid)
        return (*self.transfer.rank, -1, self.transfer.tid)

    def __repr__(self) -> str:
        if self.kind == "op":
            return f"Emit(op {self.op!r})"
        return f"Emit({self.kind} {self.transfer!r})"


@dataclass
class PartitionSchedule:
    pid: int
    items: list[EmitItem]

    @property
    def n_enq(self) -> int:
        return sum(1 for it in self.items if it.kind == "enq")

    @property
    def n_deq(self) -> int:
        return sum(1 for it in self.items if it.kind == "deq")


def _reads_of_op(op: Op) -> set[str]:
    names: set[str] = set()
    for leaf in consumed_leaves(op):
        if isinstance(leaf, VarRef):
            names.add(leaf.name)
        elif isinstance(leaf, Load) and isinstance(leaf.index, VarRef):
            names.add(leaf.index.name)
    return names


def schedule_partition(
    part: Partition,
    graph: CodeGraph,
    comm: CommPlan,
) -> PartitionSchedule:
    outs, ins = comm.by_partition(part.pid)

    items: list[EmitItem] = []
    op_item: dict[int, int] = {}  # id(op) -> item index
    for op in part.ops:
        op_item[id(op)] = len(items)
        items.append(EmitItem(kind="op", pred=op.pred, op=op))
    enq_item: dict[int, int] = {}
    for t in outs:
        enq_item[t.tid] = len(items)
        items.append(EmitItem(kind="enq", pred=t.pred, transfer=t))
    deq_item: dict[int, int] = {}
    for t in ins:
        deq_item[t.tid] = len(items)
        items.append(EmitItem(kind="deq", pred=t.pred, transfer=t))

    n = len(items)
    succ: list[set[int]] = [set() for _ in range(n)]
    npred = [0] * n

    def edge(a: int, b: int) -> None:
        if a != b and b not in succ[a]:
            succ[a].add(b)
            npred[b] += 1

    # 1. intra-partition dependence edges
    for e in graph.edges:
        ia = op_item.get(id(e.producer))
        ib = op_item.get(id(e.consumer))
        if ia is not None and ib is not None:
            edge(ia, ib)
    # ... including tree-operand order *within* a fiber (the code graph
    # only records cross-fiber tree edges).
    from .fibers import interior_operands

    fs = graph.fiberset
    for op in part.ops:
        ib = op_item[id(op)]
        for child in interior_operands(op):
            prod = fs.op_of_node[(op.sid, child.nid)]
            ia = op_item.get(id(prod))
            if ia is not None:
                edge(ia, ib)

    # 2./3. comm anchoring
    for t in outs:
        edge(op_item[id(t.producer_op)], enq_item[t.tid])
    for t in ins:
        for cons in t.consumer_ops:
            edge(deq_item[t.tid], op_item[id(cons)])

    # 4. Global communication order (FIFO consistency AND deadlock
    # freedom): *all* comm items of this partition — enqueues and
    # dequeues alike — are chained in global transfer-rank order.
    # Every dependence and constraint edge is rank-forward, so with
    # every partition agreeing on this order, any blocked wait points
    # to a strictly earlier (iteration, rank) event; waits form a
    # well-order and can never cycle, for any queue depth >= 1.
    # (Keying dequeues by consumer rank instead is the classic
    # deadlock: partition A dequeues x (rank 13) before enqueueing m
    # (rank 8) while partition B needs m to produce x.)
    comm_sorted = sorted(
        outs + ins, key=lambda t: (t.order_key, t.dst_pid, t.tid)
    )
    comm_idx = [
        enq_item[t.tid] if t.src_pid == part.pid else deq_item[t.tid]
        for t in comm_sorted
    ]
    for a, b in zip(comm_idx, comm_idx[1:]):
        edge(a, b)

    # 5. register hazard chains (regs with a writer in this partition)
    accesses: dict[str, list[tuple[tuple, int, bool]]] = {}

    def record(reg: str, rank: tuple, idx: int, is_write: bool) -> None:
        accesses.setdefault(reg, []).append((rank, idx, is_write))

    for op in part.ops:
        idx = op_item[id(op)]
        if op.writes is not None:
            record(op.writes, (*op.rank, 0), idx, True)
        for name in _reads_of_op(op):
            record(name, (*op.rank, 0), idx, False)
    for t in outs:
        record(t.reg, (*t.rank, 1), enq_item[t.tid], False)
    for t in ins:
        record(t.reg, (*t.rank, -1), deq_item[t.tid], True)

    for reg, acc in accesses.items():
        if not any(w for _, _, w in acc):
            continue
        acc.sort(key=lambda x: x[0])
        for (_, ia, _), (_, ib, _) in zip(acc, acc[1:]):
            edge(ia, ib)

    # 6. predicate availability
    cond_def_point: dict[str, int] = {}
    for op in part.ops:
        if op.writes is not None and op.writes.startswith("__c"):
            cond_def_point[op.writes] = op_item[id(op)]
    for t in ins:
        if t.reg.startswith("__c") and t.reg not in cond_def_point:
            cond_def_point[t.reg] = deq_item[t.tid]
    for i, it in enumerate(items):
        for cond, _ in it.pred:
            dp = cond_def_point.get(cond)
            if dp is not None:
                edge(dp, i)

    # -- priorities: send-feeding chains early --------------------------
    feeds_send = [False] * n
    stack = [enq_item[t.tid] for t in outs]
    rev: list[list[int]] = [[] for _ in range(n)]
    for a in range(n):
        for b in succ[a]:
            rev[b].append(a)
    for s in stack:
        feeds_send[s] = True
    while stack:
        b = stack.pop()
        for a in rev[b]:
            if not feeds_send[a]:
                feeds_send[a] = True
                stack.append(a)

    def key(i: int) -> tuple:
        it = items[i]
        cls = 0 if feeds_send[i] else 1
        if it.kind == "deq":
            # just-in-time: adopt the earliest consumer's rank so the
            # dequeue is picked right before the value is needed.
            ranks = [(*c.rank, -1) for c in it.transfer.consumer_ops]
            r = min(ranks) if ranks else it.rank
            return (cls, r, i)
        return (cls, it.rank, i)

    ready = [key(i) for i in range(n) if npred[i] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    indeg = npred[:]
    in_heap = {k[-1] for k in ready}
    while ready:
        k = heapq.heappop(ready)
        i = k[-1]
        order.append(i)
        for b in succ[i]:
            indeg[b] -= 1
            if indeg[b] == 0 and b not in in_heap:
                heapq.heappush(ready, key(b))
                in_heap.add(b)
    if len(order) != n:
        raise ScheduleError(
            f"partition {part.pid}: cyclic scheduling constraints "
            f"({n - len(order)} items unplaced)"
        )
    return PartitionSchedule(pid=part.pid, items=[items[i] for i in order])


def schedule_all(
    partitions: list[Partition],
    graph: CodeGraph,
    comm: CommPlan,
) -> list[PartitionSchedule]:
    return [schedule_partition(p, graph, comm) for p in partitions]
