"""Code-graph merging down to one node per hardware core (paper §III-B).

"The graph is transformed by merging a pair of nodes at each step,
until the total number of nodes is equal to the number of hardware
cores available for execution. ... Each step of the graph
transformation chooses one or more pairs of nodes to merge based on a
set of heuristics.  Multiple individual heuristics are weighted and
combined to compute an affinity value for each node pair.  The node
pair with the greatest affinity is merged, and then affinities are
recomputed for the next merge step."

Implemented heuristics (weights in :class:`~repro.compiler.config.MergeWeights`):

1. more dependence edges between the pair → higher affinity;
2. smaller combined static compute time → higher affinity (the estimate
   uses fixed op latencies + profile-fed memory latencies);
3. greater source-code proximity (statement line numbers) → higher
   affinity.

Variants:

* **multi-pair merge** — choose several disjoint best pairs per step
  (faster compilation for large fiber counts);
* **throughput heuristic** — "constrains partitioning to allow only
  unidirectional dependences between any two nodes in the final graph",
  implemented exactly as described: "looking for cycles at each step in
  the graph transformation.  If any cycles are found, then all nodes
  that are part of the same cycle are merged together."

Correctness pre-step: *cohesion groups* (loop-carried dependences,
see :mod:`repro.compiler.codegraph`) are unioned before any heuristic
merging.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from ..analysis.cost import CostModel
from .codegraph import CodeGraph
from .config import CompilerConfig, MergeWeights
from .fibers import Fiber, Op, consumed_leaves


@dataclass
class Partition:
    """A final code-graph node: the set of fibers one core executes."""

    pid: int
    fids: frozenset[int]
    ops: list[Op]            # rank-ordered ops of all member fibers
    cost: float              # static compute-time estimate
    n_compute_ops: int       # Table III "load balance" numerator input

    def __repr__(self) -> str:
        return f"Partition(p{self.pid}, {len(self.fids)} fibers, {self.n_compute_ops} ops)"


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if ra > rb:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return ra


@dataclass
class _Node:
    """Mutable merge-time node state."""

    nid: int
    fids: set[int]
    cost: float
    lo_line: int
    hi_line: int
    version: int = 0


def _fiber_cost(fiber: Fiber, cost: CostModel) -> float:
    total = 0.0
    for op in fiber.ops:
        if op.kind == "expr":
            total += cost.op_cost(op.node)
        elif op.kind == "store":
            total += cost.lat.store
        else:  # move
            total += cost.lat.mov
        for leaf in consumed_leaves(op):
            total += cost.leaf_cost(leaf)
    return total


def merge_partitions(
    graph: CodeGraph,
    n_parts: int,
    config: CompilerConfig | None = None,
) -> list[Partition]:
    """Merge the code graph down to at most ``n_parts`` partitions.

    Returns partitions ordered deterministically (by earliest op rank);
    partition 0 is the one the primary core runs inline (§III-G).  If
    the graph has fewer independent nodes than cores (tiny loop bodies,
    or heavy cohesion), fewer partitions are returned.
    """
    config = config or CompilerConfig()
    fibers = graph.fibers
    if not fibers:
        raise ValueError("empty code graph")
    cost_model = config.cost
    weights = config.weights

    # -- initial nodes: fibers unioned by cohesion ---------------------
    uf = _UnionFind(len(fibers))
    for group in graph.cohesion:
        members = sorted(group)
        for other in members[1:]:
            uf.union(members[0], other)

    nodes: dict[int, _Node] = {}
    fid_node: dict[int, int] = {}
    for f in fibers:
        root = uf.find(f.fid)
        fid_node[f.fid] = root
        node = nodes.get(root)
        fcost = _fiber_cost(f, cost_model)
        if node is None:
            nodes[root] = _Node(
                nid=root, fids={f.fid}, cost=fcost,
                lo_line=f.line, hi_line=f.line,
            )
        else:
            node.fids.add(f.fid)
            node.cost += fcost
            node.lo_line = min(node.lo_line, f.line)
            node.hi_line = max(node.hi_line, f.line)

    # -- pairwise dependence-edge counts at node granularity ----------
    edge_w: dict[tuple[int, int], int] = {}
    for (fa, fb), cnt in graph.fiber_pairs().items():
        na, nb = fid_node[fa], fid_node[fb]
        if na == nb:
            continue
        key = (min(na, nb), max(na, nb))
        edge_w[key] = edge_w.get(key, 0) + cnt

    # directed node graph for the throughput heuristic
    fs = graph.fiberset
    directed: dict[tuple[int, int], int] = {}
    for e in graph.edges:
        na = uf.find(fs.fiber_of(e.producer).fid)
        nb = uf.find(fs.fiber_of(e.consumer).fid)
        if na != nb:
            directed[(na, nb)] = directed.get((na, nb), 0) + 1

    total_cost = sum(n.cost for n in nodes.values())
    mean_cost = max(1e-9, total_cost / max(1, len(nodes)))
    # soft size cap: merging beyond an even per-core share is strongly
    # discouraged (the balancing intent behind the §III-B "smaller
    # compute time" heuristic — concurrency is maximised when no node
    # hogs the work).
    cap = 1.15 * total_cost / max(1, n_parts)

    def affinity(a: _Node, b: _Node) -> float:
        key = (min(a.nid, b.nid), max(a.nid, b.nid))
        dep = edge_w.get(key, 0)
        dep_term = dep / (1.0 + dep)
        time_term = 1.0 / (1.0 + (a.cost + b.cost) / mean_cost)
        gap = max(a.lo_line, b.lo_line) - min(a.hi_line, b.hi_line)
        prox_term = 1.0 / (1.0 + max(0, gap))
        score = (
            weights.dep_edges * dep_term
            + weights.small_time * time_term
            + weights.proximity * prox_term
        )
        if a.cost + b.cost > cap:
            score -= 100.0
        return score

    # -- heap of candidate pairs with lazy invalidation ----------------
    heap: list[tuple[float, int, int, int, int]] = []

    def push_pairs_for(a: int) -> None:
        na = nodes[a]
        for b, nb in nodes.items():
            if b == a:
                continue
            heapq.heappush(
                heap,
                (-affinity(na, nb), min(a, b), max(a, b),
                 na.version + nb.version, 0),
            )

    active = sorted(nodes)
    for i, a in enumerate(active):
        na = nodes[a]
        for b in active[i + 1:]:
            nb = nodes[b]
            heapq.heappush(
                heap, (-affinity(na, nb), a, b, na.version + nb.version, 0)
            )

    def do_merge(a: int, b: int) -> int:
        """Merge node b into node a (a < b); returns surviving id."""
        na, nb = nodes[a], nodes[b]
        na.fids |= nb.fids
        na.cost += nb.cost
        na.lo_line = min(na.lo_line, nb.lo_line)
        na.hi_line = max(na.hi_line, nb.hi_line)
        na.version += nb.version + 1
        del nodes[b]
        # re-aggregate undirected edge weights
        for (x, y) in list(edge_w):
            if b in (x, y):
                w = edge_w.pop((x, y))
                other = y if x == b else x
                if other == a:
                    continue
                key = (min(a, other), max(a, other))
                edge_w[key] = edge_w.get(key, 0) + w
        for (x, y) in list(directed):
            if b in (x, y):
                w = directed.pop((x, y))
                nx_, ny_ = (a if x == b else x), (a if y == b else y)
                if nx_ != ny_:
                    directed[(nx_, ny_)] = directed.get((nx_, ny_), 0) + w
        push_pairs_for(a)
        return a

    def merge_cycles() -> None:
        """Throughput heuristic: collapse every directed cycle."""
        while True:
            g = nx.DiGraph()
            g.add_nodes_from(nodes)
            g.add_edges_from(directed)
            sccs = [sorted(c) for c in nx.strongly_connected_components(g) if len(c) > 1]
            if not sccs:
                return
            for comp in sorted(sccs):
                base = comp[0]
                for other in comp[1:]:
                    if other in nodes and base in nodes:
                        do_merge(min(base, other), max(base, other))
                        base = min(base, other)

    if config.throughput_heuristic:
        merge_cycles()

    def pop_best() -> tuple[int, int] | None:
        while heap:
            negaff, a, b, ver, _ = heapq.heappop(heap)
            if a in nodes and b in nodes and nodes[a].version + nodes[b].version == ver:
                return a, b
        return None

    while len(nodes) > n_parts:
        if config.multi_pair_merge:
            budget = len(nodes) - n_parts
            picked: list[tuple[int, int]] = []
            used: set[int] = set()
            stash: list[tuple[float, int, int, int, int]] = []
            while heap and budget > 0:
                item = heapq.heappop(heap)
                _, a, b, ver, _ = item
                if a not in nodes or b not in nodes:
                    continue
                if nodes[a].version + nodes[b].version != ver:
                    continue
                if a in used or b in used:
                    stash.append(item)
                    continue
                picked.append((a, b))
                used.update((a, b))
                budget -= 1
            for item in stash:
                heapq.heappush(heap, item)
            if not picked:
                break
            for a, b in picked:
                do_merge(a, b)
        else:
            best = pop_best()
            if best is None:
                break
            do_merge(*best)
        if config.throughput_heuristic:
            merge_cycles()

    # -- materialise partitions ----------------------------------------
    fid_final: dict[int, int] = {}
    for nid, node in nodes.items():
        for fid in node.fids:
            fid_final[fid] = nid

    groups: dict[int, list[Op]] = {nid: [] for nid in nodes}
    for op in graph.fiberset.ops:
        fib = graph.fiberset.fiber_of(op)
        groups[fid_final[fib.fid]].append(op)

    ordered = sorted(
        groups.items(), key=lambda kv: min(op.rank for op in kv[1])
    )
    partitions: list[Partition] = []
    for pid, (nid, ops) in enumerate(ordered):
        ops_sorted = sorted(ops, key=lambda o: o.rank)
        partitions.append(
            Partition(
                pid=pid,
                fids=frozenset(nodes[nid].fids),
                ops=ops_sorted,
                cost=nodes[nid].cost,
                n_compute_ops=sum(1 for o in ops_sorted if o.kind == "expr"),
            )
        )
    return partitions


def load_balance_ratio(partitions: list[Partition]) -> float:
    """Table III "Load Balance": largest / smallest compute-op count."""
    counts = [max(1, p.n_compute_ops) for p in partitions]
    return max(counts) / min(counts)
