"""Communication insertion (paper §III-D, §III-E, Fig 6/7).

For every dependence edge whose producer and consumer fibers landed in
different partitions, a queue transfer is planned:

* **value transfers** — the produced scalar (an intermediate tree value,
  a temporary, or a branch condition) is enqueued right after it is
  produced and dequeued by each consuming partition ("An Enque call is
  inserted after a value has been produced ... a Deque call is inserted
  before the use of that value").  One transfer per (producer op,
  destination partition) — multiple uses in one partition share it.
* **token transfers** — same-iteration memory-ordering edges carry a
  synchronisation token through a GPR queue (the paper communicates
  through shared memory at L2 for the data itself; only the *ordering*
  needs the queue).

Static sender/receiver pairing (§III-I): both endpoints of a transfer
execute under the *producer statement's* predicate chain, so an enqueue
happens iff its dequeue happens.  Receiving partitions therefore need
the values of all conditions in that chain; a fixpoint pass adds
condition transfers until every partition can evaluate every predicate
it guards items with (the §III-E "pairs of Enque/Deque calls inserted to
transfer the values of conditional variables").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.stmts import FlatBody, PredChain
from ..ir.types import DType, I64, VClass
from .codegraph import CodeGraph
from .fibers import Op
from .merge import Partition


@dataclass(eq=False)
class Transfer:
    """One queue transfer per loop iteration (an Enque/Deque pair)."""

    tid: int
    src_pid: int
    dst_pid: int
    vclass: VClass
    kind: str                      # 'value' | 'token'
    reg: str                       # register written on the destination
    dtype: DType | None
    pred: PredChain                # producer statement's predicate chain
    rank: tuple[int, int]          # producer op rank (FIFO ordering key)
    producer_op: Op
    consumer_ops: list[Op] = field(default_factory=list)

    @property
    def queue_key(self) -> tuple[int, int, VClass]:
        return (self.src_pid, self.dst_pid, self.vclass)

    @property
    def order_key(self) -> tuple:
        """Both endpoints sort same-queue transfers by this key, making
        enqueue and dequeue orders identical (FIFO consistency)."""
        return (self.rank, self.kind, self.reg)

    def __repr__(self) -> str:
        return (
            f"Transfer(t{self.tid} {self.kind} {self.reg} "
            f"p{self.src_pid}->p{self.dst_pid} @{self.rank})"
        )


@dataclass
class CommPlan:
    transfers: list[Transfer]
    #: id(op) -> partition id
    op_pid: dict[int, int]

    @property
    def n_com_ops(self) -> int:
        """Table III "Com Ops": queue transfers per iteration."""
        return len(self.transfers)

    @property
    def queues_used(self) -> int:
        """Table III "Queues": distinct directed core pairs in use
        ("core A sending to core B and core B sending to core A count
        as 2 separate queues")."""
        return len({(t.src_pid, t.dst_pid) for t in self.transfers})

    @property
    def hw_queues_used(self) -> int:
        """Distinct (src, dst, class) hardware queues."""
        return len({t.queue_key for t in self.transfers})

    def by_partition(self, pid: int) -> tuple[list[Transfer], list[Transfer]]:
        """(outgoing enqueues, incoming dequeues) for one partition."""
        outs = [t for t in self.transfers if t.src_pid == pid]
        ins = [t for t in self.transfers if t.dst_pid == pid]
        return outs, ins


def plan_communication(
    graph: CodeGraph,
    partitions: list[Partition],
    body: FlatBody,
) -> CommPlan:
    fs = graph.fiberset
    op_pid: dict[int, int] = {}
    for part in partitions:
        for op in part.ops:
            op_pid[id(op)] = part.pid

    transfers: dict[tuple, Transfer] = {}
    counter = 0

    def get_transfer(
        kind: str, producer: Op, dst_pid: int, reg: str,
        dtype: DType | None, vclass: VClass,
    ) -> Transfer:
        nonlocal counter
        key = (kind, id(producer), dst_pid, vclass)
        t = transfers.get(key)
        if t is None:
            t = Transfer(
                tid=counter,
                src_pid=op_pid[id(producer)],
                dst_pid=dst_pid,
                vclass=vclass,
                kind=kind,
                reg=reg,
                dtype=dtype,
                pred=producer.pred,
                rank=producer.rank,
                producer_op=producer,
            )
            transfers[key] = t
            counter += 1
        return t

    # -- dependence-edge transfers --------------------------------------
    for e in graph.edges:
        src = op_pid[id(e.producer)]
        dst = op_pid[id(e.consumer)]
        if src == dst:
            continue
        if e.kind == "mem":
            t = get_transfer(
                "token", e.producer, dst,
                reg=f"__tok{e.producer.sid}_{e.producer.pos}",
                dtype=I64, vclass=VClass.GPR,
            )
        else:  # intra / value / ctrl all move the produced register
            t = get_transfer(
                "value", e.producer, dst,
                reg=e.var, dtype=e.dtype, vclass=e.dtype.vclass,
            )
        if e.consumer not in t.consumer_ops:
            t.consumer_ops.append(e.consumer)

    # -- condition-coverage fixpoint ------------------------------------
    cond_def_op: dict[str, Op] = {
        st.target: fs.root_op[st.sid]
        for st in body.stmts
        if st.kind == "cond"
    }

    def conds_available(pid: int) -> set[str]:
        avail: set[str] = set()
        for part in partitions:
            if part.pid != pid:
                continue
            for op in part.ops:
                if op.writes in cond_def_op and cond_def_op[op.writes] is op:
                    avail.add(op.writes)
        for t in transfers.values():
            if t.dst_pid == pid and t.kind == "value" and t.reg in cond_def_op:
                if cond_def_op[t.reg] is t.producer_op:
                    avail.add(t.reg)
        return avail

    def conds_needed(pid: int) -> set[str]:
        needed: set[str] = set()
        for part in partitions:
            if part.pid != pid:
                continue
            for op in part.ops:
                needed.update(c for c, _ in op.pred)
        for t in transfers.values():
            if t.src_pid == pid or t.dst_pid == pid:
                needed.update(c for c, _ in t.pred)
        return needed

    changed = True
    while changed:
        changed = False
        for part in partitions:
            missing = conds_needed(part.pid) - conds_available(part.pid)
            for cond in sorted(missing):
                prod = cond_def_op[cond]
                if op_pid[id(prod)] == part.pid:
                    continue  # locally computed, nothing to transfer
                dtype = prod.stmt.dtype
                get_transfer(
                    "value", prod, part.pid,
                    reg=cond, dtype=dtype, vclass=dtype.vclass,
                )
                changed = True

    out = sorted(transfers.values(), key=lambda t: (t.order_key, t.dst_pid))
    for i, t in enumerate(out):
        t.tid = i
    return CommPlan(transfers=out, op_pid=op_pid)
