"""Expression nodes of the mini-IR.

Statements (see :mod:`repro.ir.stmts`) own *expression trees* built from
these nodes.  The fiber-extraction algorithm of the paper (§III-A)
operates directly on these trees: leaf nodes (constants, scalar reads,
memory loads) are live-ins and remain unassigned to fibers, while
interior operation nodes are partitioned into fibers.

Nodes support Python operator overloading so kernels read naturally::

    rsq = dx * dx + dy * dy + dz * dz
    guard = rsq < cutsq

Each node carries a ``dtype``; mixed int/float arithmetic promotes to
``F64`` and comparisons yield ``BOOL``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from .types import BOOL, F64, I64, DType, unify

#: Binary operators understood by the IR, the interpreter and the
#: instruction lowering.  Comparison/logical operators yield ``BOOL``.
BINARY_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "mod",
        "min", "max",
        "lt", "le", "gt", "ge", "eq", "ne",
        "and", "or", "xor",
        "shl", "shr",
    }
)

#: Unary operators.
UNARY_OPS = frozenset({"neg", "not"})

#: Pure intrinsic calls (no side effects); all take/return F64 except
#: ``itrunc`` which converts F64 -> I64 and ``i2f`` the reverse.
INTRINSICS = frozenset(
    {"sqrt", "exp", "log", "sin", "cos", "abs", "floor", "itrunc", "i2f", "pow"}
)

_COMPARISONS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})
_LOGICAL = frozenset({"and", "or", "xor"})
_INT_ONLY = frozenset({"shl", "shr"})

ExprLike = Union["Expr", int, float, bool]


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python scalar into a :class:`Const`; pass Exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), I64)
    if isinstance(value, int):
        return Const(value, I64)
    if isinstance(value, float):
        return Const(value, F64)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


@dataclass(eq=False)
class Expr:
    """Base class for expression nodes.

    Node identity is object identity; structural equality is provided by
    :func:`repro.ir.visitors.structurally_equal`.  ``nid`` is a
    tree-unique id assigned by the numbering pass before fiber
    extraction (it is not meaningful across statements).
    """

    nid: int = field(default=-1, init=False, compare=False)

    # -- metadata ----------------------------------------------------
    @property
    def dtype(self) -> DType:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def is_leaf(self) -> bool:
        """Paper §III-A: leaves are memory loads or literal values (we
        also treat scalar variable reads as leaves: they are register
        live-ins of the statement)."""
        return isinstance(self, (Const, VarRef, Load))

    def children(self) -> Sequence["Expr"]:
        return ()

    # -- operator sugar ---------------------------------------------
    def _bin(self, op: str, other: ExprLike, swap: bool = False) -> "BinOp":
        lhs, rhs = as_expr(other if swap else self), as_expr(self if swap else other)
        return BinOp(op, lhs, rhs)

    def __add__(self, o: ExprLike) -> "BinOp":
        return self._bin("add", o)

    def __radd__(self, o: ExprLike) -> "BinOp":
        return self._bin("add", o, swap=True)

    def __sub__(self, o: ExprLike) -> "BinOp":
        return self._bin("sub", o)

    def __rsub__(self, o: ExprLike) -> "BinOp":
        return self._bin("sub", o, swap=True)

    def __mul__(self, o: ExprLike) -> "BinOp":
        return self._bin("mul", o)

    def __rmul__(self, o: ExprLike) -> "BinOp":
        return self._bin("mul", o, swap=True)

    def __truediv__(self, o: ExprLike) -> "BinOp":
        return self._bin("div", o)

    def __rtruediv__(self, o: ExprLike) -> "BinOp":
        return self._bin("div", o, swap=True)

    def __mod__(self, o: ExprLike) -> "BinOp":
        return self._bin("mod", o)

    def __rmod__(self, o: ExprLike) -> "BinOp":
        return self._bin("mod", o, swap=True)

    def __lshift__(self, o: ExprLike) -> "BinOp":
        return self._bin("shl", o)

    def __rshift__(self, o: ExprLike) -> "BinOp":
        return self._bin("shr", o)

    def __and__(self, o: ExprLike) -> "BinOp":
        return self._bin("and", o)

    def __or__(self, o: ExprLike) -> "BinOp":
        return self._bin("or", o)

    def __xor__(self, o: ExprLike) -> "BinOp":
        return self._bin("xor", o)

    def __lt__(self, o: ExprLike) -> "BinOp":
        return self._bin("lt", o)

    def __le__(self, o: ExprLike) -> "BinOp":
        return self._bin("le", o)

    def __gt__(self, o: ExprLike) -> "BinOp":
        return self._bin("gt", o)

    def __ge__(self, o: ExprLike) -> "BinOp":
        return self._bin("ge", o)

    def eq(self, o: ExprLike) -> "BinOp":
        """Equality comparison (``==`` is reserved for object identity)."""
        return self._bin("eq", o)

    def ne(self, o: ExprLike) -> "BinOp":
        return self._bin("ne", o)

    def __neg__(self) -> "UnOp":
        return UnOp("neg", self)

    def __invert__(self) -> "UnOp":
        return UnOp("not", self)

    def __bool__(self) -> bool:  # pragma: no cover - guard
        raise TypeError(
            "IR expressions are not truthy; use .eq()/.ne() and If statements"
        )


@dataclass(eq=False)
class Const(Expr):
    """Literal value (leaf)."""

    value: float | int
    _dtype: DType

    def __init__(self, value: float | int, dtype: DType | None = None):
        super().__init__()
        if dtype is None:
            dtype = F64 if isinstance(value, float) else I64
        self.value = value
        self._dtype = dtype

    @property
    def dtype(self) -> DType:
        return self._dtype

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(eq=False)
class VarRef(Expr):
    """Read of a scalar variable (loop index, temporary or parameter)."""

    name: str
    _dtype: DType

    def __init__(self, name: str, dtype: DType):
        super().__init__()
        self.name = name
        self._dtype = dtype

    @property
    def dtype(self) -> DType:
        return self._dtype

    def __repr__(self) -> str:
        return f"VarRef({self.name})"


@dataclass(eq=False)
class ArraySym:
    """Declaration of a (1-D) array living in shared memory.

    ``alias_group`` — arrays in the same group may refer to overlapping
    storage; arrays in different groups (or with ``alias_group=None``)
    are guaranteed disjoint.  ``miss_rate`` feeds the profile-directed
    cost model (§III-I limitation 3) and the simulator's cache model.
    """

    name: str
    dtype: DType = F64
    length: int | None = None
    alias_group: str | None = None
    miss_rate: float = 0.02

    def __post_init__(self) -> None:
        if not (0.0 <= self.miss_rate <= 1.0):
            raise ValueError(f"miss_rate out of range: {self.miss_rate}")

    def __getitem__(self, index: ExprLike) -> "Load":
        return Load(self, as_expr(index))

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArraySym) and other.name == self.name

    def __repr__(self) -> str:
        return f"ArraySym({self.name}:{self.dtype.value})"


@dataclass(eq=False)
class Load(Expr):
    """Memory load ``array[index]`` (leaf for fiber extraction)."""

    array: ArraySym
    index: Expr

    def __init__(self, array: ArraySym, index: ExprLike):
        super().__init__()
        self.array = array
        self.index = as_expr(index)

    @property
    def dtype(self) -> DType:
        return self.array.dtype

    def children(self) -> Sequence[Expr]:
        # NOTE: the index expression is *part of the leaf* for fiber
        # extraction purposes only when trivial; the normalizer hoists
        # non-trivial index expressions into temporaries so that by the
        # time fibers are extracted, ``index`` is a VarRef or Const.
        return (self.index,)

    def __repr__(self) -> str:
        return f"Load({self.array.name}[{self.index!r}])"


@dataclass(eq=False)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __init__(self, op: str, lhs: ExprLike, rhs: ExprLike):
        super().__init__()
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.lhs = as_expr(lhs)
        self.rhs = as_expr(rhs)
        if op in _INT_ONLY and (self.lhs.dtype.is_float or self.rhs.dtype.is_float):
            raise TypeError(f"{op} requires integer operands")

    @property
    def dtype(self) -> DType:
        if self.op in _COMPARISONS or self.op in _LOGICAL:
            return BOOL
        return unify(self.lhs.dtype, self.rhs.dtype)

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"BinOp({self.op}, {self.lhs!r}, {self.rhs!r})"


@dataclass(eq=False)
class UnOp(Expr):
    op: str
    operand: Expr

    def __init__(self, op: str, operand: ExprLike):
        super().__init__()
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = as_expr(operand)

    @property
    def dtype(self) -> DType:
        return BOOL if self.op == "not" else self.operand.dtype

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnOp({self.op}, {self.operand!r})"


@dataclass(eq=False)
class Call(Expr):
    """Pure intrinsic call (sqrt, exp, ...)."""

    fn: str
    args: tuple[Expr, ...]

    def __init__(self, fn: str, *args: ExprLike):
        super().__init__()
        if fn not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {fn!r}")
        self.fn = fn
        self.args = tuple(as_expr(a) for a in args)

    @property
    def dtype(self) -> DType:
        if self.fn == "itrunc":
            return I64
        if self.fn == "abs":
            return self.args[0].dtype
        return F64

    def children(self) -> Sequence[Expr]:
        return self.args

    def __repr__(self) -> str:
        return f"Call({self.fn}, {', '.join(map(repr, self.args))})"


@dataclass(eq=False)
class Select(Expr):
    """Ternary select ``cond ? a : b`` (single instruction on the
    simulated core).  Produced by the control-flow speculation pass
    (§III-H) to commit one of two speculatively computed values without
    rollback; also usable directly in kernels."""

    cond: Expr
    a: Expr
    b: Expr

    def __init__(self, cond: ExprLike, a: ExprLike, b: ExprLike):
        super().__init__()
        self.cond = as_expr(cond)
        self.a = as_expr(a)
        self.b = as_expr(b)

    @property
    def dtype(self) -> DType:
        return unify(self.a.dtype, self.b.dtype)

    def children(self) -> Sequence[Expr]:
        return (self.cond, self.a, self.b)

    def __repr__(self) -> str:
        return f"Select({self.cond!r}, {self.a!r}, {self.b!r})"


def select(cond: ExprLike, a: ExprLike, b: ExprLike) -> Select:
    return Select(cond, a, b)


# ----------------------------------------------------------------------
# Convenience constructors used pervasively by kernels.
# ----------------------------------------------------------------------

def sqrt(x: ExprLike) -> Call:
    return Call("sqrt", x)


def exp(x: ExprLike) -> Call:
    return Call("exp", x)


def log(x: ExprLike) -> Call:
    return Call("log", x)


def sin(x: ExprLike) -> Call:
    return Call("sin", x)


def cos(x: ExprLike) -> Call:
    return Call("cos", x)


def fabs(x: ExprLike) -> Call:
    return Call("abs", x)


def floor(x: ExprLike) -> Call:
    return Call("floor", x)


def itrunc(x: ExprLike) -> Call:
    """Float -> int truncation (used for table/spline indexing)."""
    return Call("itrunc", x)


def i2f(x: ExprLike) -> Call:
    """Int -> float conversion."""
    return Call("i2f", x)


def fmin(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("min", a, b)


def fmax(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("max", a, b)


def iter_nodes(root: Expr) -> Iterator[Expr]:
    """Post-order traversal of an expression tree (operands first), the
    order used by the paper's fiber-partitioning algorithm (§III-A)."""
    for child in root.children():
        yield from iter_nodes(child)
    yield root


def count_ops(root: Expr) -> int:
    """Number of interior (operation) nodes in a tree."""
    return sum(1 for n in iter_nodes(root) if not n.is_leaf)


def eval_const(node: Expr) -> float | int | None:
    """Fold a constant subtree to a Python value, or None."""
    if isinstance(node, Const):
        return node.value
    if isinstance(node, UnOp):
        v = eval_const(node.operand)
        if v is None:
            return None
        return -v if node.op == "neg" else int(not v)
    if isinstance(node, BinOp):
        a, b = eval_const(node.lhs), eval_const(node.rhs)
        if a is None or b is None:
            return None
        try:
            return _fold_bin(node.op, a, b)
        except (ZeroDivisionError, ValueError, OverflowError):
            return None
    return None


def _fold_bin(op: str, a, b):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b if isinstance(a, float) or isinstance(b, float) else _idiv(a, b)
    if op == "mod":
        return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else _imod(a, b)
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "and":
        return int(bool(a) and bool(b))
    if op == "or":
        return int(bool(a) or bool(b))
    if op == "xor":
        return int(bool(a) != bool(b))
    if op == "shl":
        return int(a) << int(b)
    if op == "shr":
        return int(a) >> int(b)
    raise ValueError(op)


def _idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    """C-style remainder (sign of dividend)."""
    return a - _idiv(a, b) * b
