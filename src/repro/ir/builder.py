"""Fluent builder DSL for writing loop kernels.

Example::

    from repro.ir import LoopBuilder, F64, sqrt

    b = LoopBuilder("axpy-ish", trip="n")
    i = b.index
    x = b.array("x", F64)
    y = b.array("y", F64)
    a = b.param("a", F64)
    t = b.let("t", a * x[i] + y[i])
    with b.if_(t > 0.0) as br:
        b.store(y, i, sqrt(t))
    with br.otherwise():
        b.store(y, i, -t)
    loop = b.build()

Every emitted statement is tagged with a monotonically increasing
pseudo source-line number; the merge pass's proximity heuristic
(§III-B) uses these the way the paper uses real line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .nodes import ArraySym, Expr, ExprLike, VarRef, as_expr
from .stmts import Assign, If, Loop, ScalarParam, Stmt, Store
from .types import BOOL, F64, I64, DType


class LoopBuilder:
    """Incrementally constructs a :class:`~repro.ir.stmts.Loop`."""

    def __init__(
        self,
        name: str,
        trip: str = "n",
        index: str = "i",
        source: str = "",
    ) -> None:
        self.name = name
        self._index_name = index
        self._trip_name = trip
        self._source = source
        self._arrays: list[ArraySym] = []
        self._params: list[ScalarParam] = [ScalarParam(trip, I64)]
        self._live_out: list[str] = []
        self._body: list[Stmt] = []
        self._block_stack: list[list[Stmt]] = [self._body]
        self._line = 0
        self._tmp_counter = 0
        self._declared: dict[str, DType] = {index: I64, trip: I64}

    # -- declarations -------------------------------------------------
    @property
    def index(self) -> VarRef:
        """The loop induction variable (0..trip-1)."""
        return VarRef(self._index_name, I64)

    def array(
        self,
        name: str,
        dtype: DType = F64,
        *,
        alias_group: str | None = None,
        miss_rate: float = 0.02,
        length: int | None = None,
    ) -> ArraySym:
        if any(a.name == name for a in self._arrays):
            raise ValueError(f"duplicate array {name!r}")
        sym = ArraySym(name, dtype, length, alias_group, miss_rate)
        self._arrays.append(sym)
        return sym

    def param(self, name: str, dtype: DType = F64) -> VarRef:
        """Declare a loop-invariant scalar live-in."""
        if name in self._declared:
            raise ValueError(f"duplicate scalar {name!r}")
        self._params.append(ScalarParam(name, dtype))
        self._declared[name] = dtype
        return VarRef(name, dtype)

    def accumulator(self, name: str, dtype: DType = F64) -> VarRef:
        """Declare a reduction accumulator: live-in, live-out and
        loop-carried.  Update it with :meth:`set`."""
        ref = self.param(name, dtype)
        self._live_out.append(name)
        return ref

    # -- statements ----------------------------------------------------
    def _emit(self, stmt: Stmt) -> None:
        self._line += 1
        stmt.line = self._line
        self._block_stack[-1].append(stmt)

    def let(self, name: str | None, expr: ExprLike, dtype: DType | None = None) -> VarRef:
        """Define a fresh temporary and return a reference to it."""
        expr = as_expr(expr)
        if name is None:
            self._tmp_counter += 1
            name = f"t{self._tmp_counter}"
        dt = dtype if dtype is not None else expr.dtype
        if name in self._declared and self._declared[name] != dt:
            raise TypeError(f"{name!r} redefined with different dtype")
        self._declared[name] = dt
        self._emit(Assign(name, expr, dt))
        return VarRef(name, dt)

    def set(self, var: VarRef | str, expr: ExprLike) -> VarRef:
        """Re-assign an existing temporary/accumulator."""
        name = var.name if isinstance(var, VarRef) else var
        if name not in self._declared:
            raise NameError(f"{name!r} not declared; use let()/param() first")
        dt = self._declared[name]
        self._emit(Assign(name, as_expr(expr), dt))
        return VarRef(name, dt)

    def store(self, array: ArraySym, index: ExprLike, expr: ExprLike) -> None:
        self._emit(Store(array, index, expr))

    def live_out(self, *vars: VarRef | str) -> None:
        """Mark temporaries as used after the loop (§III-F)."""
        for v in vars:
            name = v.name if isinstance(v, VarRef) else v
            if name not in self._live_out:
                self._live_out.append(name)

    # -- control flow ---------------------------------------------------
    def if_(self, cond: ExprLike) -> "_IfContext":
        stmt = If(cond, [], [])
        self._emit(stmt)
        return _IfContext(self, stmt)

    # -- finalization ----------------------------------------------------
    def build(self) -> Loop:
        if len(self._block_stack) != 1:
            raise RuntimeError("unclosed if-block in builder")
        return Loop(
            name=self.name,
            index=self._index_name,
            trip=self._trip_name,
            body=self._body,
            arrays=list(self._arrays),
            params=list(self._params),
            live_out=list(self._live_out),
            source=self._source,
        )


@dataclass
class _IfContext:
    """Context manager returned by :meth:`LoopBuilder.if_`."""

    builder: LoopBuilder
    stmt: If
    _armed: Optional[list[Stmt]] = None

    def __enter__(self) -> "_IfContext":
        self.builder._block_stack.append(self.stmt.then)
        return self

    def __exit__(self, *exc) -> None:
        self.builder._block_stack.pop()

    def otherwise(self) -> "_ElseContext":
        return _ElseContext(self.builder, self.stmt)


@dataclass
class _ElseContext:
    builder: LoopBuilder
    stmt: If

    def __enter__(self) -> "_ElseContext":
        self.builder._block_stack.append(self.stmt.orelse)
        return self

    def __exit__(self, *exc) -> None:
        self.builder._block_stack.pop()
