"""Statements and loop containers of the mini-IR.

Two levels of representation exist:

* the *structured* form built by kernels (:class:`Assign`,
  :class:`Store`, :class:`If` nested inside a :class:`Loop`), and
* the *flat* form produced by :mod:`repro.ir.normalize`
  (:class:`FlatStmt` with an explicit control-flow predicate chain),
  which is what the compiler passes operate on.  The predicate chain is
  the paper's §III-E "set of control flow predicates for each
  statement": a sequence of (condition-variable, required-value) pairs,
  ordered outermost-first, mirroring the nesting structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .nodes import ArraySym, Expr, ExprLike, as_expr
from .types import BOOL, DType


# ----------------------------------------------------------------------
# Structured statements
# ----------------------------------------------------------------------

@dataclass(eq=False)
class Stmt:
    """Base class of structured statements."""

    line: int = field(default=0, init=False)


@dataclass(eq=False)
class Assign(Stmt):
    """``target = expr`` where ``target`` is a scalar temporary."""

    target: str
    expr: Expr
    dtype: DType

    def __init__(self, target: str, expr: ExprLike, dtype: DType | None = None):
        super().__init__()
        self.expr = as_expr(expr)
        self.target = target
        self.dtype = dtype if dtype is not None else self.expr.dtype

    def __repr__(self) -> str:
        return f"Assign({self.target} = {self.expr!r})"


@dataclass(eq=False)
class Store(Stmt):
    """``array[index] = expr``."""

    array: ArraySym
    index: Expr
    expr: Expr

    def __init__(self, array: ArraySym, index: ExprLike, expr: ExprLike):
        super().__init__()
        self.array = array
        self.index = as_expr(index)
        self.expr = as_expr(expr)

    def __repr__(self) -> str:
        return f"Store({self.array.name}[{self.index!r}] = {self.expr!r})"


@dataclass(eq=False)
class If(Stmt):
    """Structured conditional with optional else block."""

    cond: Expr
    then: list[Stmt]
    orelse: list[Stmt]

    def __init__(self, cond: ExprLike, then: list[Stmt], orelse: list[Stmt] | None = None):
        super().__init__()
        self.cond = as_expr(cond)
        self.then = list(then)
        self.orelse = list(orelse or [])

    def __repr__(self) -> str:
        return f"If({self.cond!r}, then={len(self.then)}, else={len(self.orelse)})"


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Pre-order walk over structured statements (Ifs included)."""
    for s in body:
        yield s
        if isinstance(s, If):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)


# ----------------------------------------------------------------------
# Loop container
# ----------------------------------------------------------------------

@dataclass(eq=False)
class ScalarParam:
    """Loop-invariant scalar input (transferred to secondary cores by
    the runtime's argument-passing protocol, §III-G)."""

    name: str
    dtype: DType


@dataclass(eq=False)
class Loop:
    """An innermost counted loop — the compilation unit of the paper.

    ``index`` iterates 0..trip-1.  ``params`` are loop-invariant scalar
    live-ins.  ``live_out`` names temporaries whose final value is used
    after the loop (§III-F copies them back to the primary core).
    ``accumulators`` maps reduction variables to their initial parameter
    (they are both live-in and live-out, carried across iterations).
    """

    name: str
    index: str
    trip: str  # name of the trip-count parameter
    body: list[Stmt]
    arrays: list[ArraySym] = field(default_factory=list)
    params: list[ScalarParam] = field(default_factory=list)
    live_out: list[str] = field(default_factory=list)
    source: str = ""  # "file.c:function:line" provenance label

    def array(self, name: str) -> ArraySym:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def __repr__(self) -> str:
        return f"Loop({self.name}, body={len(self.body)} stmts)"


# ----------------------------------------------------------------------
# Flat form (output of the normalizer)
# ----------------------------------------------------------------------

#: One element of a control-flow predicate chain: (condition temp, value
#: the condition must have for the statement to execute).
PredItem = tuple[str, bool]
PredChain = tuple[PredItem, ...]


def common_prefix(a: PredChain, b: PredChain) -> PredChain:
    """Longest common prefix of two predicate chains (used to place
    communication so that sender and receiver are statically paired)."""
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


def is_prefix(p: PredChain, q: PredChain) -> bool:
    """True if ``p`` is a (non-strict) prefix of ``q``."""
    return len(p) <= len(q) and q[: len(p)] == p


@dataclass(eq=False)
class FlatStmt:
    """A statement of the flat (normalized) loop body.

    ``kind`` is one of:

    * ``"assign"`` — scalar assignment ``target = expr``;
    * ``"store"``  — memory store ``array[index_var] = expr``;
    * ``"cond"``   — assignment of a branch condition temporary
      (an ``assign`` that other statements' predicate chains refer to).

    After normalization every ``expr`` has bounded depth, every Load
    index is a leaf (VarRef/Const), and predicate chains reflect the
    original nesting.
    """

    sid: int
    kind: str
    pred: PredChain
    expr: Expr
    target: Optional[str] = None        # assign/cond
    dtype: Optional[DType] = None       # assign/cond
    array: Optional[ArraySym] = None    # store
    index: Optional[Expr] = None        # store
    line: int = 0

    def __post_init__(self) -> None:
        if self.kind in ("assign", "cond"):
            if self.target is None:
                raise ValueError("assign requires a target")
            if self.dtype is None:
                self.dtype = self.expr.dtype
        elif self.kind == "store":
            if self.array is None or self.index is None:
                raise ValueError("store requires array and index")
        else:
            raise ValueError(f"bad FlatStmt kind {self.kind!r}")

    @property
    def is_store(self) -> bool:
        return self.kind == "store"

    def __repr__(self) -> str:
        guard = "".join(f"[{c}={'T' if v else 'F'}]" for c, v in self.pred)
        if self.is_store:
            return f"S{self.sid}{guard} {self.array.name}[{self.index!r}] = {self.expr!r}"
        return f"S{self.sid}{guard} {self.target} = {self.expr!r}"


@dataclass(eq=False)
class FlatBody:
    """Normalized loop: flat statement list + interface metadata."""

    loop: Loop
    stmts: list[FlatStmt]
    #: temps that are read before (re)definition within one iteration,
    #: i.e. their value flows in from the previous iteration or from
    #: loop setup (reduction accumulators and the like).
    carried: frozenset[str] = frozenset()

    @property
    def index(self) -> str:
        return self.loop.index

    def stmt(self, sid: int) -> FlatStmt:
        return self.stmts[sid]

    def defs_of(self, temp: str) -> list[FlatStmt]:
        return [s for s in self.stmts if s.target == temp]

    def __iter__(self) -> Iterator[FlatStmt]:
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)
