"""Normalization: structured loop body -> flat predicated statements.

This implements the paper's front-end preprocessing:

* **Compound-expression splitting** (§III-A): "the expression trees are
  pre-processed to reduce the depth of the tree by splitting compound
  expressions into multiple statements.  This makes it possible to
  detect even more fine-grained parallelism."  Controlled by
  ``max_height``: any subtree whose operation height exceeds the limit
  is hoisted into a fresh temporary statement.
* **Load-index hoisting**: non-trivial index expressions of memory
  accesses become their own statements, so Loads are genuine leaves for
  fiber extraction.
* **Control-predicate computation** (§III-E): each conditional's test is
  assigned to a condition temporary (kind ``"cond"``); statements inside
  the branch carry the predicate chain ``(..., (cond, True/False))``.
* **Upward-exposed-read detection**: temporaries read before a
  dominating definition within one iteration are *loop-carried*
  (reduction accumulators, recurrences); the partitioner must keep all
  their defining/reading fibers on one core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .nodes import Const, Expr, Load, VarRef, count_ops
from .stmts import (
    Assign,
    FlatBody,
    FlatStmt,
    If,
    Loop,
    PredChain,
    Stmt,
    Store,
    is_prefix,
)
from .types import I64, DType
from .visitors import map_expr, op_height, var_names


@dataclass
class _Ctx:
    max_height: int
    stmts: list[FlatStmt] = field(default_factory=list)
    counter: int = 0
    cond_counter: int = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"__{prefix}{self.counter}"

    def emit(self, **kw) -> FlatStmt:
        st = FlatStmt(sid=len(self.stmts), **kw)
        self.stmts.append(st)
        return st


def normalize(loop: Loop, max_height: int = 3) -> FlatBody:
    """Flatten + split ``loop`` into a :class:`FlatBody`.

    ``max_height`` bounds the operation height of every emitted
    expression tree; smaller values expose finer-grained fibers
    (paper §III-A).  ``max_height < 1`` is rejected.
    """
    if max_height < 1:
        raise ValueError("max_height must be >= 1")
    ctx = _Ctx(max_height=max_height)
    _flatten_block(loop.body, (), ctx)
    body = FlatBody(loop=loop, stmts=ctx.stmts)
    body.carried = _carried_temps(body)
    _validate(body)
    return body


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------

def _flatten_block(block: list[Stmt], pred: PredChain, ctx: _Ctx) -> None:
    for stmt in block:
        if isinstance(stmt, Assign):
            expr = _prepare(stmt.expr, pred, stmt.line, ctx)
            ctx.emit(
                kind="assign",
                pred=pred,
                expr=expr,
                target=stmt.target,
                dtype=stmt.dtype,
                line=stmt.line,
            )
        elif isinstance(stmt, Store):
            index = _leaf_index(stmt.index, pred, stmt.line, ctx)
            expr = _prepare(stmt.expr, pred, stmt.line, ctx)
            ctx.emit(
                kind="store",
                pred=pred,
                expr=expr,
                array=stmt.array,
                index=index,
                line=stmt.line,
            )
        elif isinstance(stmt, If):
            cexpr = _prepare(stmt.cond, pred, stmt.line, ctx)
            ctx.cond_counter += 1
            cname = f"__c{ctx.cond_counter}"
            ctx.emit(
                kind="cond",
                pred=pred,
                expr=cexpr,
                target=cname,
                dtype=cexpr.dtype,
                line=stmt.line,
            )
            _flatten_block(stmt.then, pred + ((cname, True),), ctx)
            _flatten_block(stmt.orelse, pred + ((cname, False),), ctx)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")


def _prepare(expr: Expr, pred: PredChain, line: int, ctx: _Ctx) -> Expr:
    """Hoist load indices, then split for height."""
    expr = _hoist_indices(expr, pred, line, ctx)
    return _split_height(expr, pred, line, ctx)


def _leaf_index(index: Expr, pred: PredChain, line: int, ctx: _Ctx) -> Expr:
    """Return a leaf (VarRef/Const) index, hoisting if necessary."""
    if isinstance(index, (VarRef, Const)):
        return _hoist_indices(index, pred, line, ctx)
    hoisted = _prepare(index, pred, line, ctx)
    if isinstance(hoisted, (VarRef, Const)):
        return hoisted
    if hoisted.dtype != I64:
        raise TypeError(f"array index must be integer, got {hoisted.dtype}")
    name = ctx.fresh("x")
    ctx.emit(kind="assign", pred=pred, expr=hoisted, target=name, dtype=I64, line=line)
    return VarRef(name, I64)


def _hoist_indices(expr: Expr, pred: PredChain, line: int, ctx: _Ctx) -> Expr:
    """Rebuild ``expr`` such that every Load's index is a leaf."""

    def fix(node: Expr) -> Expr | None:
        if isinstance(node, Load) and not isinstance(node.index, (VarRef, Const)):
            if node.index.dtype != I64:
                raise TypeError(
                    f"array index must be integer, got {node.index.dtype}"
                )
            # the index tree has itself been rebuilt already (map_expr is
            # bottom-up) but may still be compound: split it, then hoist.
            idx = _split_height(node.index, pred, line, ctx)
            name = ctx.fresh("x")
            ctx.emit(kind="assign", pred=pred, expr=idx, target=name, dtype=I64, line=line)
            return Load(node.array, VarRef(name, I64))
        return None

    return map_expr(expr, fix)


def _split_height(expr: Expr, pred: PredChain, line: int, ctx: _Ctx) -> Expr:
    """Bound the op-height of ``expr`` by hoisting deep subtrees."""
    if op_height(expr) <= ctx.max_height:
        return expr

    def fix(node: Expr) -> Expr | None:
        # Children have already been fixed (bottom-up), so each child's
        # height is <= max_height.  If this node exceeds the limit,
        # hoist its tallest children until it fits.
        if node.is_leaf or op_height(node) <= ctx.max_height:
            return None
        from .nodes import BinOp, Call, UnOp  # local to avoid cycle noise

        def hoist(child: Expr) -> Expr:
            if child.is_leaf or op_height(child) < ctx.max_height:
                return child
            name = ctx.fresh("e")
            ctx.emit(
                kind="assign", pred=pred, expr=child, target=name,
                dtype=child.dtype, line=line,
            )
            return VarRef(name, child.dtype)

        if isinstance(node, BinOp):
            return BinOp(node.op, hoist(node.lhs), hoist(node.rhs))
        if isinstance(node, UnOp):
            return UnOp(node.op, hoist(node.operand))
        if isinstance(node, Call):
            return Call(node.fn, *(hoist(a) for a in node.args))
        return None  # pragma: no cover

    return map_expr(expr, fix)


# ----------------------------------------------------------------------
# Carried-temp detection & validation
# ----------------------------------------------------------------------

def _carried_temps(body: FlatBody) -> frozenset[str]:
    """Temps read at a point not dominated by a same-iteration def."""
    from ..analysis.reachdefs import dominates_use

    loop = body.loop
    assigned = {s.target for s in body.stmts if s.target is not None}
    carried: set[str] = set()
    # defs seen so far: name -> list of pred chains of defs
    seen: dict[str, list[PredChain]] = {}
    for st in body.stmts:
        for name in _reads_of(st):
            if name not in assigned:
                continue  # pure live-in parameter; never redefined
            defs = seen.get(name, [])
            if not dominates_use(set(defs), st.pred):
                carried.add(name)
        if st.target is not None:
            seen.setdefault(st.target, []).append(st.pred)
    # A carried temp must have an initial value: require it to be a
    # declared parameter/accumulator (checked in _validate).
    return frozenset(carried)


def _reads_of(st: FlatStmt) -> set[str]:
    names = var_names(st.expr)
    if st.index is not None:
        names |= var_names(st.index)
    return names


def _validate(body: FlatBody) -> None:
    loop = body.loop
    declared = set(loop.param_names()) | {loop.index}
    assigned = {s.target for s in body.stmts if s.target is not None}
    for st in body.stmts:
        for name in _reads_of(st):
            if name not in declared and name not in assigned:
                raise NameError(
                    f"{loop.name}: '{name}' read in {st!r} but never "
                    "defined or declared as a parameter"
                )
    for name in body.carried:
        if name not in declared:
            raise NameError(
                f"{loop.name}: '{name}' is read before any dominating "
                "definition but has no initial value; declare it with "
                "param()/accumulator()"
            )
    for name in loop.live_out:
        if name not in assigned and name not in declared:
            raise NameError(f"{loop.name}: live-out '{name}' never defined")
