"""Human-readable rendering of IR expressions, statements and loops."""

from __future__ import annotations

from .nodes import BinOp, Call, Const, Expr, Load, Select, UnOp, VarRef
from .stmts import Assign, FlatBody, If, Loop, Stmt, Store

_INFIX = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
    "and": "&&", "or": "||", "xor": "^", "shl": "<<", "shr": ">>",
}


def fmt_expr(e: Expr) -> str:
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, VarRef):
        return e.name
    if isinstance(e, Load):
        return f"{e.array.name}[{fmt_expr(e.index)}]"
    if isinstance(e, BinOp):
        if e.op in _INFIX:
            return f"({fmt_expr(e.lhs)} {_INFIX[e.op]} {fmt_expr(e.rhs)})"
        return f"{e.op}({fmt_expr(e.lhs)}, {fmt_expr(e.rhs)})"
    if isinstance(e, UnOp):
        return f"(-{fmt_expr(e.operand)})" if e.op == "neg" else f"(!{fmt_expr(e.operand)})"
    if isinstance(e, Call):
        return f"{e.fn}({', '.join(fmt_expr(a) for a in e.args)})"
    if isinstance(e, Select):
        return f"({fmt_expr(e.cond)} ? {fmt_expr(e.a)} : {fmt_expr(e.b)})"
    raise TypeError(type(e))


def fmt_stmt(s: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(s, Assign):
        return f"{pad}{s.target} = {fmt_expr(s.expr)}"
    if isinstance(s, Store):
        return f"{pad}{s.array.name}[{fmt_expr(s.index)}] = {fmt_expr(s.expr)}"
    if isinstance(s, If):
        lines = [f"{pad}if {fmt_expr(s.cond)}:"]
        lines += [fmt_stmt(t, indent + 1) for t in s.then] or [f"{pad}  pass"]
        if s.orelse:
            lines.append(f"{pad}else:")
            lines += [fmt_stmt(t, indent + 1) for t in s.orelse]
        return "\n".join(lines)
    raise TypeError(type(s))


def fmt_loop(loop: Loop) -> str:
    head = [
        f"loop {loop.name}  # {loop.source}" if loop.source else f"loop {loop.name}",
        f"  arrays: {', '.join(a.name for a in loop.arrays)}",
        f"  params: {', '.join(p.name for p in loop.params)}",
    ]
    if loop.live_out:
        head.append(f"  live_out: {', '.join(loop.live_out)}")
    head.append(f"  for {loop.index} in range({loop.trip}):")
    body = [fmt_stmt(s, 2) for s in loop.body]
    return "\n".join(head + body)


def fmt_flat(body: FlatBody) -> str:
    lines = [f"flat {body.loop.name} ({len(body.stmts)} stmts)"]
    if body.carried:
        lines.append(f"  carried: {', '.join(sorted(body.carried))}")
    for st in body.stmts:
        guard = "".join(f"[{c}={'T' if v else 'F'}]" for c, v in st.pred)
        if st.is_store:
            lhs = f"{st.array.name}[{fmt_expr(st.index)}]"
        else:
            lhs = st.target
        tag = "c" if st.kind == "cond" else " "
        lines.append(f"  S{st.sid:<3}{tag} {guard}{lhs} = {fmt_expr(st.expr)}")
    return "\n".join(lines)
