"""Mini-IR: expression trees, statements, loops and the kernel DSL.

This package provides the program representation the compiler passes
(:mod:`repro.compiler`) transform, mirroring the constructs the paper's
XL-compiler implementation manipulates (§III): expression-tree
statements, structured conditionals, scalar temporaries and shared
array memory, inside a counted innermost loop.
"""

from .builder import LoopBuilder
from .nodes import (
    BINARY_OPS,
    INTRINSICS,
    UNARY_OPS,
    ArraySym,
    BinOp,
    Call,
    Const,
    Expr,
    Load,
    Select,
    UnOp,
    VarRef,
    as_expr,
    select,
    cos,
    count_ops,
    exp,
    fabs,
    floor,
    fmax,
    fmin,
    i2f,
    iter_nodes,
    itrunc,
    log,
    sin,
    sqrt,
)
from .normalize import normalize
from .printer import fmt_expr, fmt_flat, fmt_loop, fmt_stmt
from .stmts import (
    Assign,
    FlatBody,
    FlatStmt,
    If,
    Loop,
    PredChain,
    PredItem,
    ScalarParam,
    Stmt,
    Store,
    common_prefix,
    is_prefix,
    walk_stmts,
)
from .types import BOOL, F64, I64, DType, VClass
from .visitors import (
    clone,
    loads,
    map_expr,
    op_height,
    structurally_equal,
    substitute,
    var_names,
    var_reads,
)

__all__ = [
    "ArraySym", "Assign", "BINARY_OPS", "BOOL", "BinOp", "Call", "Const",
    "DType", "Expr", "F64", "FlatBody", "FlatStmt", "I64", "INTRINSICS",
    "If", "Load", "Loop", "LoopBuilder", "PredChain", "PredItem",
    "ScalarParam", "Select", "select", "Stmt", "Store", "UNARY_OPS", "UnOp", "VClass",
    "VarRef", "as_expr", "clone", "common_prefix", "cos", "count_ops",
    "exp", "fabs", "floor", "fmax", "fmin", "fmt_expr", "fmt_flat",
    "fmt_loop", "fmt_stmt", "i2f", "is_prefix", "iter_nodes", "itrunc",
    "loads", "log", "map_expr", "normalize", "op_height", "sin", "sqrt",
    "structurally_equal", "substitute", "var_names", "var_reads",
    "walk_stmts",
]
