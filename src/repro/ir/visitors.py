"""Generic expression-tree utilities: cloning, structural comparison,
variable collection, mapping."""

from __future__ import annotations

from typing import Callable, Iterator

from .nodes import ArraySym, BinOp, Call, Const, Expr, Load, Select, UnOp, VarRef


def clone(node: Expr) -> Expr:
    """Deep-copy an expression tree (fresh node identities, nid reset)."""
    if isinstance(node, Const):
        return Const(node.value, node.dtype)
    if isinstance(node, VarRef):
        return VarRef(node.name, node.dtype)
    if isinstance(node, Load):
        return Load(node.array, clone(node.index))
    if isinstance(node, BinOp):
        return BinOp(node.op, clone(node.lhs), clone(node.rhs))
    if isinstance(node, UnOp):
        return UnOp(node.op, clone(node.operand))
    if isinstance(node, Call):
        return Call(node.fn, *(clone(a) for a in node.args))
    if isinstance(node, Select):
        return Select(clone(node.cond), clone(node.a), clone(node.b))
    raise TypeError(type(node))


def substitute(node: Expr, mapping: dict[str, Expr]) -> Expr:
    """Clone ``node`` replacing VarRefs by ``mapping[name]`` (cloned)."""
    if isinstance(node, VarRef) and node.name in mapping:
        return clone(mapping[node.name])
    if isinstance(node, Const):
        return Const(node.value, node.dtype)
    if isinstance(node, VarRef):
        return VarRef(node.name, node.dtype)
    if isinstance(node, Load):
        return Load(node.array, substitute(node.index, mapping))
    if isinstance(node, BinOp):
        return BinOp(node.op, substitute(node.lhs, mapping), substitute(node.rhs, mapping))
    if isinstance(node, UnOp):
        return UnOp(node.op, substitute(node.operand, mapping))
    if isinstance(node, Call):
        return Call(node.fn, *(substitute(a, mapping) for a in node.args))
    if isinstance(node, Select):
        return Select(
            substitute(node.cond, mapping),
            substitute(node.a, mapping),
            substitute(node.b, mapping),
        )
    raise TypeError(type(node))


def structurally_equal(a: Expr, b: Expr) -> bool:
    """Structural (not identity) equality of two trees."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Const):
        return a.value == b.value and a.dtype == b.dtype
    if isinstance(a, VarRef):
        return a.name == b.name
    if isinstance(a, Load):
        return a.array == b.array and structurally_equal(a.index, b.index)
    if isinstance(a, BinOp):
        return (
            a.op == b.op
            and structurally_equal(a.lhs, b.lhs)
            and structurally_equal(a.rhs, b.rhs)
        )
    if isinstance(a, UnOp):
        return a.op == b.op and structurally_equal(a.operand, b.operand)
    if isinstance(a, Call):
        return (
            a.fn == b.fn
            and len(a.args) == len(b.args)
            and all(structurally_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Select):
        return all(
            structurally_equal(x, y)
            for x, y in zip(a.children(), b.children())
        )
    raise TypeError(type(a))


def var_reads(node: Expr) -> Iterator[VarRef]:
    """All scalar VarRef leaves, including those inside Load indices."""
    if isinstance(node, VarRef):
        yield node
    for c in node.children():
        yield from var_reads(c)


def var_names(node: Expr) -> set[str]:
    return {v.name for v in var_reads(node)}


def loads(node: Expr) -> Iterator[Load]:
    if isinstance(node, Load):
        yield node
    for c in node.children():
        yield from loads(c)


def arrays_read(node: Expr) -> set[ArraySym]:
    return {ld.array for ld in loads(node)}


def op_height(node: Expr) -> int:
    """Length of the longest operation chain in a tree (leaves = 0)."""
    if node.is_leaf:
        return 0
    return 1 + max((op_height(c) for c in node.children()), default=0)


def map_expr(node: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rebuild; ``fn`` may replace any rebuilt node (return
    None to keep it)."""
    if isinstance(node, (Const, VarRef)):
        rebuilt: Expr = clone(node)
    elif isinstance(node, Load):
        rebuilt = Load(node.array, map_expr(node.index, fn))
    elif isinstance(node, BinOp):
        rebuilt = BinOp(node.op, map_expr(node.lhs, fn), map_expr(node.rhs, fn))
    elif isinstance(node, UnOp):
        rebuilt = UnOp(node.op, map_expr(node.operand, fn))
    elif isinstance(node, Call):
        rebuilt = Call(node.fn, *(map_expr(a, fn) for a in node.args))
    elif isinstance(node, Select):
        rebuilt = Select(
            map_expr(node.cond, fn), map_expr(node.a, fn), map_expr(node.b, fn)
        )
    else:  # pragma: no cover - defensive
        raise TypeError(type(node))
    out = fn(rebuilt)
    return rebuilt if out is None else out
