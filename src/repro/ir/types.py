"""Value types for the mini-IR.

The hardware model (paper §II, §V) distinguishes two register files and,
correspondingly, two classes of communication queues: floating-point
values travel through FP queues and integer/general-purpose values
through GPR queues.  Every IR expression therefore carries a
:class:`DType` from which its queue class (:class:`VClass`) is derived.
"""

from __future__ import annotations

import enum


class VClass(enum.Enum):
    """Queue/register class of a value (paper §V: "separate queues for
    floating point values and for general-purpose register values").

    ``CTL`` is a third class used only by the work-stealing runtime
    mode: per-*core* dispatch/STOP channels must stay distinct from the
    per-*fiber* GPR data channels so every queue keeps a single
    producer and a single consumer under any fiber→core placement.
    """

    GPR = "gpr"
    FPR = "fpr"
    CTL = "ctl"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VClass.{self.name}"


class DType(enum.Enum):
    """Scalar data types supported by the IR.

    ``BOOL`` values are carried in general-purpose registers (0/1), like
    condition codes materialised into a GPR on the A2.
    """

    F64 = "f64"
    I64 = "i64"
    BOOL = "bool"

    @property
    def vclass(self) -> VClass:
        """Queue class used when this value crosses cores."""
        return VClass.FPR if self is DType.F64 else VClass.GPR

    @property
    def is_float(self) -> bool:
        return self is DType.F64

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


F64 = DType.F64
I64 = DType.I64
BOOL = DType.BOOL


def unify(a: DType, b: DType) -> DType:
    """Result type of an arithmetic op combining ``a`` and ``b``.

    Mixed int/float arithmetic promotes to ``F64`` (the simulator's
    functional semantics promote the same way).  Boolean operands behave
    as integers, matching the untyped condition registers of the target.
    """
    if DType.F64 in (a, b):
        return DType.F64
    return DType.I64
