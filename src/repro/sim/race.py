"""Happens-before race detector for simulated executions.

The compiler must order every pair of conflicting memory accesses
through the queues (§III-D memory-ordering tokens) or keep them on one
core.  This module *verifies* that property dynamically: cores carry
vector clocks, queue transfers propagate them (a dequeue joins the
enqueueing core's clock at the time of the enqueue), and every memory
access is checked against the last conflicting accesses of other cores.

A reported race means the compiler emitted code whose result depends on
cross-core timing — a miscompile even if this particular run produced
the right answer.  Used by the test suite as a *failure-injection*
oracle (removing mem edges must produce detectable races) and as an
extra invariant over the kernel suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import QueueId


@dataclass(frozen=True)
class Race:
    array: str
    index: int
    first_core: int
    first_kind: str   # 'load' | 'store'
    second_core: int
    second_kind: str

    def __str__(self) -> str:
        return (
            f"race on {self.array}[{self.index}]: "
            f"core {self.first_core} {self.first_kind} vs "
            f"core {self.second_core} {self.second_kind} (unordered)"
        )


class VectorClock:
    __slots__ = ("t",)

    def __init__(self, n: int):
        self.t = [0] * n

    def tick(self, cid: int) -> None:
        self.t[cid] += 1

    def join(self, other: list[int]) -> None:
        self.t = [max(a, b) for a, b in zip(self.t, other)]

    def snapshot(self) -> list[int]:
        return list(self.t)

    def happens_before(self, other: list[int]) -> bool:
        """self ≤ other componentwise (self is in other's past)."""
        return all(a <= b for a, b in zip(self.t, other))


@dataclass
class _Access:
    clock: list[int]
    core: int


@dataclass
class RaceDetector:
    """Attach to a :class:`~repro.sim.machine.Machine` before running.

    The machine calls :meth:`on_load` / :meth:`on_store` /
    :meth:`on_enq` / :meth:`on_deq`; races accumulate in
    :attr:`races` (deduplicated per (array, kinds, cores) signature).
    """

    n_cores: int
    clocks: list[VectorClock] = field(init=False)
    races: list[Race] = field(default_factory=list)
    _last_store: dict = field(default_factory=dict)   # (arr, idx) -> _Access
    _last_loads: dict = field(default_factory=dict)   # (arr, idx) -> list[_Access]
    _msg_clock: dict = field(default_factory=dict)    # (queue, entry#) -> clock
    _seen: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self.clocks = [VectorClock(self.n_cores) for _ in range(self.n_cores)]

    # -- queue events ---------------------------------------------------
    def on_enq(self, cid: int, qid: QueueId, entry: int) -> None:
        self.clocks[cid].tick(cid)
        self._msg_clock[(qid, entry)] = self.clocks[cid].snapshot()

    def on_deq(self, cid: int, qid: QueueId, entry: int) -> None:
        self.clocks[cid].tick(cid)
        sent = self._msg_clock.pop((qid, entry), None)
        if sent is not None:
            self.clocks[cid].join(sent)

    # -- memory events --------------------------------------------------
    def _report(self, arr: str, idx: int, prev: _Access, kind_prev: str,
                cid: int, kind_now: str) -> None:
        sig = (arr, prev.core, kind_prev, cid, kind_now)
        if sig in self._seen:
            return
        self._seen.add(sig)
        self.races.append(
            Race(arr, idx, prev.core, kind_prev, cid, kind_now)
        )

    def on_load(self, cid: int, arr: str, idx: int) -> None:
        self.clocks[cid].tick(cid)
        me = self.clocks[cid].t
        st = self._last_store.get((arr, idx))
        if st is not None and st.core != cid:
            if not all(a <= b for a, b in zip(st.clock, me)):
                self._report(arr, idx, st, "store", cid, "load")
        self._last_loads.setdefault((arr, idx), []).append(
            _Access(self.clocks[cid].snapshot(), cid)
        )

    def on_store(self, cid: int, arr: str, idx: int) -> None:
        self.clocks[cid].tick(cid)
        me = self.clocks[cid].t
        key = (arr, idx)
        st = self._last_store.get(key)
        if st is not None and st.core != cid:
            if not all(a <= b for a, b in zip(st.clock, me)):
                self._report(arr, idx, st, "store", cid, "store")
        for ld in self._last_loads.get(key, []):
            if ld.core != cid and not all(
                a <= b for a, b in zip(ld.clock, me)
            ):
                self._report(arr, idx, ld, "load", cid, "store")
        self._last_store[key] = _Access(self.clocks[cid].snapshot(), cid)
        self._last_loads[key] = []
