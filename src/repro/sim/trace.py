"""Execution tracing: per-core event timelines and ASCII rendering.

Attach a :class:`TraceRecorder` to a machine (``trace=True`` on
:func:`repro.runtime.execute_kernel` or the Machine constructor) to
capture communication and control events with simulated timestamps,
then render a queue-centric timeline — the visual equivalent of the
paper's Fig 11 — or summarise where each core spent its cycles.

The recorder is a thin consumer of the :mod:`repro.obs.events` bus:
the machine subscribes :meth:`TraceRecorder.on_event`, which keeps the
communication/halt subset as :class:`TraceEvent` rows for the ASCII
views.  For machine-readable output (Perfetto timelines, metrics) use
:mod:`repro.obs` directly — it sees the full event vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import QueueId


@dataclass(frozen=True)
class TraceEvent:
    time: float
    core: int
    kind: str            # 'enq' | 'deq' | 'halt'
    queue: QueueId | None = None
    value: object = None
    stall: float = 0.0   # cycles this event waited (readiness / slot)


@dataclass
class TraceRecorder:
    events: list[TraceEvent] = field(default_factory=list)
    max_events: int = 200_000
    #: events discarded once ``max_events`` was reached — reported in
    #: :meth:`summary` instead of silently truncating the trace.
    dropped: int = 0

    def record(self, **kw) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(**kw))
        else:
            self.dropped += 1

    def on_event(self, ev) -> None:
        """Bus subscriber (:class:`repro.obs.events.Event` consumer):
        keep the enq/deq/halt subset the ASCII renderers draw."""
        kind = ev.kind
        if kind == "enq" or kind == "deq":
            self.record(time=ev.ts, core=ev.core, kind=kind,
                        queue=ev.queue, value=ev.value, stall=ev.stall)
        elif kind == "halt":
            self.record(time=ev.ts, core=ev.core, kind="halt")

    # -- queries ---------------------------------------------------------
    def by_core(self, core: int) -> list[TraceEvent]:
        return [e for e in self.events if e.core == core]

    def by_queue(self, qid: QueueId) -> list[TraceEvent]:
        return [e for e in self.events if e.queue == qid]

    def total_stall(self, core: int | None = None) -> float:
        return sum(
            e.stall for e in self.events if core is None or e.core == core
        )

    # -- rendering ---------------------------------------------------------
    def render_timeline(self, width: int = 72, until: float | None = None) -> str:
        """ASCII timeline: one row per queue, '>' enqueues, '<' dequeues
        placed proportionally to simulated time."""
        if not self.events:
            return "(no events)"
        end = until if until is not None else max(e.time for e in self.events)
        end = max(end, 1.0)
        queues = sorted(
            {e.queue for e in self.events if e.queue is not None},
            key=lambda q: (q.src, q.dst, q.vclass.value),
        )
        lines = [f"timeline 0 .. {end:.0f} cycles"]
        for q in queues:
            row = ["."] * width
            for e in self.by_queue(q):
                pos = min(width - 1, int(e.time / end * (width - 1)))
                mark = ">" if e.kind == "enq" else "<"
                row[pos] = mark if row[pos] == "." else "*"
            label = f"{q.src}->{q.dst}.{q.vclass.value:3s}"
            lines.append(f"  {label:12s} |{''.join(row)}|")
        lines.append("  ('>' enqueue, '<' dequeue, '*' both)")
        return "\n".join(lines)

    def summary(self) -> str:
        cores = sorted({e.core for e in self.events})
        lines = ["trace summary:"]
        for c in cores:
            evs = self.by_core(c)
            n_enq = sum(1 for e in evs if e.kind == "enq")
            n_deq = sum(1 for e in evs if e.kind == "deq")
            lines.append(
                f"  core {c}: {n_enq} enq, {n_deq} deq, "
                f"{self.total_stall(c):.0f} stall cycles"
            )
        if self.dropped:
            lines.append(
                f"  WARNING: {self.dropped} event(s) dropped past the "
                f"{self.max_events}-event cap"
            )
        return "\n".join(lines)
