"""Execution tracing: per-core event timelines and ASCII rendering.

Attach a :class:`TraceRecorder` to a machine (``trace=True`` on
:func:`repro.runtime.execute_kernel` or the Machine constructor) to
capture communication and control events with simulated timestamps,
then render a queue-centric timeline — the visual equivalent of the
paper's Fig 11 — or summarise where each core spent its cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import QueueId


@dataclass(frozen=True)
class TraceEvent:
    time: float
    core: int
    kind: str            # 'enq' | 'deq' | 'halt'
    queue: QueueId | None = None
    value: object = None
    stall: float = 0.0   # cycles this event waited (readiness / slot)


@dataclass
class TraceRecorder:
    events: list[TraceEvent] = field(default_factory=list)
    max_events: int = 200_000

    def record(self, **kw) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(**kw))

    # -- queries ---------------------------------------------------------
    def by_core(self, core: int) -> list[TraceEvent]:
        return [e for e in self.events if e.core == core]

    def by_queue(self, qid: QueueId) -> list[TraceEvent]:
        return [e for e in self.events if e.queue == qid]

    def total_stall(self, core: int | None = None) -> float:
        return sum(
            e.stall for e in self.events if core is None or e.core == core
        )

    # -- rendering ---------------------------------------------------------
    def render_timeline(self, width: int = 72, until: float | None = None) -> str:
        """ASCII timeline: one row per queue, '>' enqueues, '<' dequeues
        placed proportionally to simulated time."""
        if not self.events:
            return "(no events)"
        end = until if until is not None else max(e.time for e in self.events)
        end = max(end, 1.0)
        queues = sorted(
            {e.queue for e in self.events if e.queue is not None},
            key=lambda q: (q.src, q.dst, q.vclass.value),
        )
        lines = [f"timeline 0 .. {end:.0f} cycles"]
        for q in queues:
            row = ["."] * width
            for e in self.by_queue(q):
                pos = min(width - 1, int(e.time / end * (width - 1)))
                mark = ">" if e.kind == "enq" else "<"
                row[pos] = mark if row[pos] == "." else "*"
            label = f"{q.src}->{q.dst}.{q.vclass.value:3s}"
            lines.append(f"  {label:12s} |{''.join(row)}|")
        lines.append("  ('>' enqueue, '<' dequeue, '*' both)")
        return "\n".join(lines)

    def summary(self) -> str:
        cores = sorted({e.core for e in self.events})
        lines = ["trace summary:"]
        for c in cores:
            evs = self.by_core(c)
            n_enq = sum(1 for e in evs if e.kind == "enq")
            n_deq = sum(1 for e in evs if e.kind == "deq")
            lines.append(
                f"  core {c}: {n_enq} enq, {n_deq} deq, "
                f"{self.total_stall(c):.0f} stall cycles"
            )
        return "\n".join(lines)
