"""In-order single-issue core model.

Each core executes its :class:`~repro.isa.program.Program` on its own
timeline.  The only cross-core interactions are the hardware queues (and
the shared functional memory, whose cross-core ordering the compiler
enforces *through* the queues), so a core can run ahead until it needs a
queue event that has not been processed yet — the machine then suspends
it and resumes it later with correct simulated timestamps (conservative
dataflow replay; see :mod:`repro.sim.machine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ops as _ops
from ..analysis.cost import LatencyTable
from ..obs.events import STALL_QUEUE_EMPTY, STALL_QUEUE_FULL, STALL_TRANSFER
from ..ir.types import F64, I64
from ..isa.instructions import Imm, Instr, QueueId
from ..isa.program import Program
from .memory import CoreCache, SharedMemory
from .queues import HwQueue


class SimError(RuntimeError):
    pass


class SimDivergence(SimError):
    """A fast simulation path (specialized/batched) produced a result
    the reference simulator contradicts.  This must never happen — the
    guard raises it loudly (``FailureKind.SIM_DIVERGENCE``) instead of
    serving the fast answer, and the differential battery exists to
    keep this class unreachable."""


@dataclass
class CoreStats:
    instrs: int = 0
    enq_ops: int = 0
    deq_ops: int = 0
    queue_stall: float = 0.0   # cycles waiting on queue readiness/slots
    compute: float = 0.0       # cycles in compute/branch/mov ops
    mem: float = 0.0           # cycles in loads/stores
    per_op: dict = field(default_factory=dict)
    # exact stall-reason decomposition (invariant: the three buckets sum
    # to queue_stall; repro.obs.report builds its attribution from them)
    stall_full: float = 0.0      # enqueue waited for a free slot
    stall_empty: float = 0.0     # dequeue waited for the producer
    stall_transfer: float = 0.0  # dequeue waited for the in-flight hop


@dataclass
class _Blocked:
    kind: str          # 'entry' | 'slot'
    queue: HwQueue
    index: int         # history index being waited for
    since: float       # core time when the wait began


class Core:
    def __init__(
        self,
        cid: int,
        program: Program,
        lat: LatencyTable,
        cache: CoreCache,
        memory: SharedMemory,
        queues,  # Machine-owned dict resolver: QueueId -> HwQueue
    ) -> None:
        self.cid = cid
        self.program = program
        self.lat = lat
        self.cache = cache
        self.memory = memory
        self.queues = queues
        self.regs: dict[str, float | int] = {}
        self.frames: list[tuple[int, int]] = []
        self.fn = program.entry
        self.pc = 0
        self.time = 0.0
        self.halted = False
        self.blocked: Optional[_Blocked] = None
        self.stats = CoreStats()
        #: optional RaceDetector installed by the machine
        self.race = None
        #: optional enabled EventBus (repro.obs.events) installed by the
        #: machine; None keeps the hot loop observation-free.
        self.obs = None

    # -- helpers -----------------------------------------------------
    def _val(self, x):
        if isinstance(x, Imm):
            return x.value
        try:
            return self.regs[x]
        except KeyError:
            raise SimError(
                f"core {self.cid}: read of undefined register {x!r} at "
                f"{self.program.functions[self.fn].name}:{self.pc} "
                f"({self.program.functions[self.fn].instrs[self.pc]!r})"
            ) from None

    def unblocked(self) -> bool:
        b = self.blocked
        if b is None:
            return True
        if b.kind == "entry":
            return b.queue.n_enq > b.index
        # slot waits also clear when the queue *grew* under the blocked
        # producer (live reconfiguration): re-check current capacity.
        return b.queue.n_deq > b.index or b.queue.slot_blocker() is None

    # -- main slice ----------------------------------------------------
    def run_slice(self, budget: int) -> int:
        """Execute until halt, block, or ``budget`` instructions.
        Returns the number of instructions executed."""
        self.blocked = None
        executed = 0
        obs = self.obs
        t0 = self.time
        regs = self.regs
        lat = self.lat
        functions = self.program.functions
        fn_obj = functions[self.fn]
        code = fn_obj.instrs
        labels = fn_obj.labels

        while executed < budget:
            if self.pc >= len(code):
                raise SimError(
                    f"core {self.cid}: fell off end of {fn_obj.name}"
                )
            ins: Instr = code[self.pc]
            op = ins.op

            if op == "bin":
                a = self._val(ins.a)
                b = self._val(ins.b)
                regs[ins.dst] = _ops.eval_binop(
                    ins.fn, a, b, F64 if ins.is_float else I64
                )
                self.time += lat.binop(ins.fn, ins.is_float)
                self.pc += 1
            elif op == "load":
                idx = int(self._val(ins.a))
                regs[ins.dst] = self.memory.load(ins.array, idx)
                self.time += self.cache.access(ins.array, idx, lat)
                self.stats.mem += 1
                if self.race is not None:
                    self.race.on_load(self.cid, ins.array, idx)
                self.pc += 1
            elif op == "store":
                idx = int(self._val(ins.a))
                self.memory.store(ins.array, idx, self._val(ins.b))
                self.cache.touch(ins.array, idx)
                self.time += lat.store
                self.stats.mem += 1
                if self.race is not None:
                    self.race.on_store(self.cid, ins.array, idx)
                self.pc += 1
            elif op == "call":
                args = [
                    self._val(x)
                    for x in (ins.a, ins.b, ins.c)
                    if x is not None
                ]
                regs[ins.dst] = _ops.eval_call(ins.fn, args)
                self.time += lat.call[ins.fn]
                self.pc += 1
            elif op == "un":
                regs[ins.dst] = _ops.eval_unop(
                    ins.fn, self._val(ins.a), F64 if ins.is_float else I64
                )
                self.time += lat.unop
                self.pc += 1
            elif op == "select":
                v = self._val(ins.a) if self._val(ins.c) else self._val(ins.b)
                regs[ins.dst] = float(v) if ins.is_float else v
                self.time += lat.select
                self.pc += 1
            elif op == "mov":
                regs[ins.dst] = self._val(ins.a)
                self.time += lat.mov
                self.pc += 1
            elif op == "enq":
                q: HwQueue = self.queues(ins.queue)
                blocker = q.slot_blocker()
                if blocker is not None:
                    self.blocked = _Blocked("slot", q, blocker, self.time)
                    self.stats.instrs += executed
                    if obs is not None and executed:
                        obs.emit_retire(t0, self.cid, self.time - t0, executed)
                    return executed
                start = self.time
                wait = q.slot_free_time() - start
                if wait < 0.0:
                    wait = 0.0
                completion = start + wait + lat.enqueue
                self.stats.queue_stall += wait
                self.stats.stall_full += wait
                q.stall_full += wait
                if self.race is not None:
                    self.race.on_enq(self.cid, ins.queue, q.n_enq)
                sent = self._val(ins.a)
                q.push(sent, completion + q.transfer_latency)
                if obs is not None:
                    if wait > 0.0:
                        obs.emit_stall(start, self.cid, STALL_QUEUE_FULL,
                                       wait, queue=ins.queue)
                    obs.emit_enq(completion, self.cid, ins.queue, sent, wait)
                self.time = completion
                self.stats.enq_ops += 1
                self.pc += 1
            elif op == "deq":
                q = self.queues(ins.queue)
                blocker = q.entry_blocker()
                if blocker is not None:
                    self.blocked = _Blocked("entry", q, blocker, self.time)
                    self.stats.instrs += executed
                    if obs is not None and executed:
                        obs.emit_retire(t0, self.cid, self.time - t0, executed)
                    return executed
                start = self.time
                ready = q.head_ready_time()
                wait = ready - start
                if wait < 0.0:
                    wait = 0.0
                completion = start + wait + lat.dequeue
                self.stats.queue_stall += wait
                q.stall_empty += wait
                if wait > 0.0:
                    # Split the wait at the producer's enqueue-completion
                    # point (ready - transfer_latency): before it the
                    # queue was empty, after it the value was in flight.
                    empty = ready - q.transfer_latency - start
                    if empty < 0.0:
                        empty = 0.0
                    self.stats.stall_empty += empty
                    self.stats.stall_transfer += wait - empty
                    if obs is not None:
                        if empty > 0.0:
                            obs.emit_stall(start, self.cid, STALL_QUEUE_EMPTY,
                                           empty, queue=ins.queue)
                        if wait > empty:
                            obs.emit_stall(start + empty, self.cid,
                                           STALL_TRANSFER, wait - empty,
                                           queue=ins.queue)
                if self.race is not None:
                    self.race.on_deq(self.cid, ins.queue, q.n_deq)
                regs[ins.dst] = q.pop(completion)
                if obs is not None:
                    obs.emit_deq(completion, self.cid, ins.queue,
                                 regs[ins.dst], wait)
                self.time = completion
                self.stats.deq_ops += 1
                self.pc += 1
            elif op == "fjp":
                taken = not self._val(ins.a)
                self.pc = labels[ins.label] if taken else self.pc + 1
                self.time += lat.branch
            elif op == "tjp":
                taken = bool(self._val(ins.a))
                self.pc = labels[ins.label] if taken else self.pc + 1
                self.time += lat.branch
            elif op == "jp":
                self.pc = labels[ins.label]
                self.time += lat.branch
            elif op == "lab":
                self.pc += 1
                executed -= 1  # zero-cost pseudo-instruction
            elif op == "callr":
                target = int(self._val(ins.a))
                if not 0 <= target < len(functions):
                    raise SimError(
                        f"core {self.cid}: bad function index {target}"
                    )
                self.frames.append((self.fn, self.pc + 1))
                self.fn = target
                fn_obj = functions[self.fn]
                code = fn_obj.instrs
                labels = fn_obj.labels
                self.pc = 0
                self.time += lat.branch
            elif op == "ret":
                if not self.frames:
                    raise SimError(f"core {self.cid}: ret with empty stack")
                self.fn, self.pc = self.frames.pop()
                fn_obj = functions[self.fn]
                code = fn_obj.instrs
                labels = fn_obj.labels
                self.time += lat.branch
            elif op == "halt":
                self.halted = True
                self.stats.instrs += executed + 1
                if obs is not None:
                    obs.emit_retire(t0, self.cid, self.time - t0, executed + 1)
                    obs.emit_halt(self.time, self.cid)
                return executed + 1
            else:  # pragma: no cover - defensive
                raise SimError(f"core {self.cid}: bad opcode {op}")
            executed += 1
        self.stats.instrs += executed
        if obs is not None and executed:
            obs.emit_retire(t0, self.cid, self.time - t0, executed)
        return executed
