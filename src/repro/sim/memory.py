"""Shared functional memory + per-core cache timing model.

Functionally, memory is the workload's NumPy arrays, shared by all
cores (the paper's cores share memory through L2; the queues carry only
register values, §II).

For timing, each core has a private LRU cache of ``cache_lines`` lines
of ``line_elems`` consecutive elements; a hit costs ``load_hit`` and a
miss ``load_miss`` cycles.  This is the substitution for Mambo's cache
hierarchy: it preserves the property the evaluation depends on — loads
have a bimodal cost with spatial/temporal locality — while staying
deterministic and independent of cross-core interleaving (so sequential
and parallel runs of the same kernel see comparable memory behaviour).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..analysis.cost import LatencyTable


class MemoryFault(RuntimeError):
    """Out-of-bounds access (address and array recorded)."""


@dataclass
class SharedMemory:
    """Functional storage: name -> NumPy buffer (mutated in place)."""

    arrays: dict[str, np.ndarray]
    is_float: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, buf in self.arrays.items():
            self.is_float[name] = buf.dtype == np.float64

    def load(self, name: str, idx: int):
        buf = self.arrays[name]
        if not 0 <= idx < len(buf):
            raise MemoryFault(f"load {name}[{idx}] out of bounds (len {len(buf)})")
        v = buf[idx]
        return float(v) if self.is_float[name] else int(v)

    def store(self, name: str, idx: int, value) -> None:
        buf = self.arrays[name]
        if not 0 <= idx < len(buf):
            raise MemoryFault(f"store {name}[{idx}] out of bounds (len {len(buf)})")
        buf[idx] = value


class CoreCache:
    """Per-core LRU line cache (timing only)."""

    __slots__ = ("lines", "capacity", "shift", "hits", "misses")

    def __init__(self, cache_lines: int, line_elems: int):
        self.lines: OrderedDict = OrderedDict()
        self.capacity = cache_lines
        self.shift = max(0, line_elems - 1).bit_length()
        self.hits = 0
        self.misses = 0

    def access(self, name: str, idx: int, lat: LatencyTable) -> int:
        key = (name, idx >> self.shift)
        lines = self.lines
        if key in lines:
            lines.move_to_end(key)
            self.hits += 1
            return lat.load_hit
        self.misses += 1
        lines[key] = True
        if len(lines) > self.capacity:
            lines.popitem(last=False)
        return lat.load_miss

    def touch(self, name: str, idx: int) -> None:
        """Allocate on store (write-allocate), no timing decision."""
        key = (name, idx >> self.shift)
        lines = self.lines
        if key in lines:
            lines.move_to_end(key)
        else:
            lines[key] = True
            if len(lines) > self.capacity:
                lines.popitem(last=False)
