"""Cycle-level multi-core simulator with hardware queues (paper §II/§V).

Substitution for the Mambo BG/Q simulator: deterministic in-order cores,
per-core LRU caches, shared functional memory, and the paper's
enqueue/dequeue instructions with parameterised queue depth and transfer
latency.
"""

from .core import Core, CoreStats, SimDivergence, SimError
from .machine import (
    BlockedTransfer,
    BudgetExceeded,
    DeadlockError,
    Machine,
    MachineFailure,
    MachineParams,
    PartialStats,
    QueueStat,
    SimResult,
)
from .memory import CoreCache, MemoryFault, SharedMemory
from .queues import HwQueue
from .race import Race, RaceDetector
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "BlockedTransfer", "BudgetExceeded", "Core", "CoreCache", "CoreStats",
    "DeadlockError",
    "HwQueue", "Machine", "MachineFailure", "MachineParams", "MemoryFault",
    "PartialStats", "QueueStat", "Race", "RaceDetector", "SharedMemory",
    "SimDivergence", "SimError", "SimResult", "TraceEvent", "TraceRecorder",
]
