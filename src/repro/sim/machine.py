"""Multi-core machine: conservative dataflow replay of all cores.

Cores interact only through single-producer/single-consumer hardware
queues, so each core can be *processed* far ahead of the others while
simulated timestamps remain exact: every queue records enqueue-ready
and dequeue-completion times, and a core that needs an event that has
not been processed yet is suspended and resumed later (its stall time
is computed from timestamps, not from processing order).

Deadlock (all unfinished cores waiting on queue events that will never
be produced) is detected and reported with full queue diagnostics —
this is the runtime manifestation of a compiler failure to statically
pair senders and receivers (§III-I), or of an undersized queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.cost import LatencyTable, default_latencies
from ..isa.instructions import QueueId
from ..isa.program import Program
from .core import Core, CoreStats, SimError
from .memory import CoreCache, SharedMemory
from .queues import HwQueue


@dataclass
class PartialStats:
    """Progress snapshot attached to machine failures.

    When a run dies (deadlock, budget, drain error) the caller — the
    guard layer, the chaos report, a human — needs to know how far the
    machine got, not just that it died.  Cheap to build: everything is
    already tracked per core/queue."""

    total_instrs: int
    core_times: list[float]
    core_instrs: list[int]
    core_halted: list[bool]
    queue_stats: list[QueueStat]

    def format(self) -> str:
        cores = ", ".join(
            f"c{i}: {t:.0f}cy/{n}i{'*' if h else ''}"
            for i, (t, n, h) in enumerate(
                zip(self.core_times, self.core_instrs, self.core_halted)
            )
        )
        return (
            f"{self.total_instrs} instrs; {cores}; "
            f"{len(self.queue_stats)} queue(s) active"
        )


class MachineFailure(RuntimeError):
    """Base for machine-detected failures; carries partial statistics."""

    def __init__(self, message: str, partial: PartialStats | None = None):
        super().__init__(message)
        self.partial = partial


@dataclass(frozen=True)
class BlockedTransfer:
    """One transfer a core is deadlocked on, in static-checker terms.

    ``queue`` uses the same ``(src, dst, vclass)`` key the static
    wait-for-graph cycle reports (repro.check), so a dynamic deadlock
    can be cross-checked against the predicted cycle.
    """

    core: int
    kind: str                    # 'entry' (dequeue) | 'slot' (enqueue)
    queue: tuple                 # (producer pid, consumer pid, vclass)
    index: int                   # FIFO index the core is waiting for
    tag: str                     # value register / immediate involved

    def format(self) -> str:
        op = "deq" if self.kind == "entry" else "enq"
        return f"core{self.core}:{op} {self.queue}[{self.tag}]#{self.index}"


class DeadlockError(MachineFailure):
    """All unfinished cores wait on queue events that cannot happen.

    ``blocked`` lists the precise blocked transfer set: queue key,
    producer/consumer partition ids and the value tag of the
    instruction each stuck core is executing.
    """

    def __init__(
        self,
        message: str,
        partial: PartialStats | None = None,
        blocked: tuple[BlockedTransfer, ...] = (),
    ):
        super().__init__(message, partial)
        self.blocked = blocked


class BudgetExceeded(MachineFailure):
    pass


@dataclass(frozen=True)
class MachineParams:
    """Hardware configuration (paper §V defaults: 20-slot queues,
    5-cycle transfer latency)."""

    queue_depth: int = 20
    queue_latency: int = 5
    latencies: LatencyTable = field(default_factory=default_latencies)
    cache_lines: int = 1024
    line_elems: int = 8
    #: total instruction budget across cores (runaway watchdog).
    max_instrs: int = 500_000_000
    #: instructions per scheduling slice.
    slice_budget: int = 100_000
    #: per-queue depth overrides: ``(((src, dst, vclass), depth), ...)``
    #: keyed like the checker/deadlock diagnostics.  A tuple (not a
    #: dict) so the params stay frozen/hashable and store-keyable; the
    #: adaptive runtime bakes self-tuned depths in here per epoch.
    queue_depths: tuple = ()


@dataclass
class QueueStat:
    qid: QueueId
    n_transfers: int
    max_outstanding: int
    #: queue capacity at run end (0 when unknown, e.g. partial stats).
    depth: int = 0
    #: exact time-weighted occupancy histogram (occupancy level ->
    #: simulated cycles spent at that level); empty for partial stats.
    occupancy_hist: dict = field(default_factory=dict)
    #: simulated cycles stalled on this queue (producer side / consumer
    #: side); zero for partial stats.
    stall_full: float = 0.0
    stall_empty: float = 0.0

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted mean occupancy while the queue was non-empty."""
        total = sum(self.occupancy_hist.values())
        if total <= 0:
            return 0.0
        return sum(k * v for k, v in self.occupancy_hist.items()) / total


@dataclass
class SimResult:
    """Outcome of one machine run."""

    cycles: float                   # makespan (max core finish time)
    core_times: list[float]
    core_stats: list[CoreStats]
    arrays: dict[str, np.ndarray]
    scalars: dict[str, float | int]  # primary-core live-out registers
    queue_stats: list[QueueStat]
    total_instrs: int
    #: races found by the (optional) happens-before detector
    races: list = field(default_factory=list)
    #: TraceRecorder when tracing was enabled (set by the runtime)
    trace: object | None = None

    @property
    def total_queue_stall(self) -> float:
        return sum(s.queue_stall for s in self.core_stats)


class Machine:
    def __init__(
        self,
        programs: list[Program],
        memory: SharedMemory,
        params: MachineParams | None = None,
        preload_regs: dict[int, dict[str, float | int]] | None = None,
        detect_races: bool = False,
        trace: bool = False,
        faults=None,
        obs=None,
        controller=None,
        sim_mode: str = "reference",
    ) -> None:
        self.params = params or MachineParams()
        self.memory = memory
        self.queues: dict[QueueId, HwQueue] = {}
        #: optional runtime controller (repro.runtime.adaptive): an
        #: object with ``on_round(machine)`` called once per scheduling
        #: round and ``on_stuck(machine) -> bool`` consulted before a
        #: deadlock is declared — returning True (it changed something,
        #: e.g. grew a queue) counts as progress and the run continues.
        self.controller = controller
        self._depth_overrides = {
            key: depth for key, depth in self.params.queue_depths
        }
        #: optional FaultInjector (see :mod:`repro.faults`): wired into
        #: every queue and consulted for per-core latency scaling.
        self.faults = faults
        self.race_detector = None
        if detect_races:
            from .race import RaceDetector

            self.race_detector = RaceDetector(n_cores=len(programs))
        #: the observability bus (repro.obs.events.EventBus) the cores
        #: emit into; a disabled bus is treated exactly like None so the
        #: hot loop never pays for observers that cannot hear.
        self.obs = obs if (obs is not None and obs.enabled) else None
        self.trace_recorder = None
        if trace:
            # The ASCII TraceRecorder is a plain bus consumer now: wire
            # it to the caller's bus, or a private one if none was given.
            from ..obs.events import EventBus
            from .trace import TraceRecorder

            if self.obs is None:
                self.obs = EventBus()
            self.trace_recorder = TraceRecorder()
            self.obs.subscribe(self.trace_recorder.on_event)
        core_cls = Core
        if sim_mode == "specialized":
            # The specialized closures have no per-instruction hooks, so
            # observation, race detection and live reconfiguration (whose
            # decisions are processing-order sensitive) silently keep the
            # reference core — correctness first, speed when unobserved.
            if (self.obs is None and self.race_detector is None
                    and controller is None):
                from .fast.specialize import SpecializedCore

                core_cls = SpecializedCore
        elif sim_mode == "batched":
            if (self.obs is not None or self.race_detector is not None
                    or controller is not None or faults is not None):
                raise ValueError(
                    "batched sim_mode cannot carry obs/race/controller/"
                    "fault hooks; run those lanes on the scalar path"
                )
            from .fast.batch import BatchCore

            core_cls = BatchCore
        elif sim_mode != "reference":
            raise ValueError(f"unknown sim_mode {sim_mode!r}")
        self.cores = [
            core_cls(
                cid=i,
                program=prog,
                lat=(
                    faults.latencies_for(i, self.params.latencies)
                    if faults is not None
                    else self.params.latencies
                ),
                cache=CoreCache(self.params.cache_lines, self.params.line_elems),
                memory=memory,
                queues=self._queue,
            )
            for i, prog in enumerate(programs)
        ]
        for cid, regs in (preload_regs or {}).items():
            self.cores[cid].regs.update(regs)
        if self.race_detector is not None:
            for core in self.cores:
                core.race = self.race_detector
        if self.obs is not None:
            for core in self.cores:
                core.obs = self.obs

    def _queue(self, qid: QueueId) -> HwQueue:
        q = self.queues.get(qid)
        if q is None:
            depth = self._depth_overrides.get(
                (qid.src, qid.dst, qid.vclass.value), self.params.queue_depth
            )
            q = HwQueue(
                qid=qid,
                depth=depth,
                transfer_latency=self.params.queue_latency,
                injector=self.faults,
            )
            self.queues[qid] = q
        return q

    def run(self, live_out: list[str] | None = None, primary: int = 0) -> SimResult:
        total = 0
        budget = self.params.slice_budget
        while True:
            progressed = False
            for core in self.cores:
                if core.halted or not core.unblocked():
                    continue
                total += core.run_slice(budget)
                progressed = True
                if total > self.params.max_instrs:
                    raise BudgetExceeded(
                        f"instruction budget exceeded ({total} instrs)",
                        partial=self._partial_stats(total),
                    )
            if all(c.halted for c in self.cores):
                break
            if not progressed:
                # Last chance: the runtime controller may rescue a
                # capacity deadlock by *growing* a blocked queue (grows
                # are monotone-safe — capacity wait-for edges can only
                # relax).  A controller that changed nothing leaves the
                # deadlock to stand.
                if (self.controller is not None
                        and self.controller.on_stuck(self)):
                    continue
                raise DeadlockError(
                    self._deadlock_report(),
                    partial=self._partial_stats(total),
                    blocked=self._blocked_transfers(),
                )
            if self.controller is not None:
                self.controller.on_round(self)

        self._check_drained(total)
        scalars = {}
        for name in live_out or []:
            if name in self.cores[primary].regs:
                scalars[name] = self.cores[primary].regs[name]
        return SimResult(
            cycles=max(c.time for c in self.cores),
            core_times=[c.time for c in self.cores],
            core_stats=[c.stats for c in self.cores],
            arrays=self.memory.arrays,
            scalars=scalars,
            queue_stats=[
                QueueStat(q.qid, q.n_deq, q.max_outstanding,
                          depth=q.depth,
                          occupancy_hist=q.occupancy_histogram(),
                          stall_full=q.stall_full,
                          stall_empty=q.stall_empty)
                for q in sorted(
                    self.queues.values(),
                    key=lambda q: (q.qid.src, q.qid.dst, q.qid.vclass.value),
                )
            ],
            total_instrs=total,
            races=list(self.race_detector.races)
            if self.race_detector is not None
            else [],
        )

    def _partial_stats(self, total: int) -> PartialStats:
        return PartialStats(
            total_instrs=total,
            core_times=[c.time for c in self.cores],
            core_instrs=[c.stats.instrs for c in self.cores],
            core_halted=[c.halted for c in self.cores],
            queue_stats=[
                QueueStat(q.qid, q.n_deq, q.max_outstanding)
                for q in self.queues.values()
            ],
        )

    def _check_drained(self, total: int = 0) -> None:
        leftovers = [q for q in self.queues.values() if q.outstanding]
        if leftovers:
            detail = ", ".join(
                f"{q.qid!r}:{q.outstanding} left" for q in leftovers
            )
            err = SimError(f"unbalanced communication at halt: {detail}")
            err.partial = self._partial_stats(total)
            raise err

    def _blocked_transfers(self) -> tuple[BlockedTransfer, ...]:
        out = []
        for core in self.cores:
            b = core.blocked
            if core.halted or b is None:
                continue
            ins = core.program.functions[core.fn].instrs[core.pc]
            if ins.op == "deq":
                tag = ins.dst or "?"
            elif isinstance(ins.a, str):
                tag = ins.a
            else:
                tag = repr(ins.a)
            qid = b.queue.qid
            out.append(BlockedTransfer(
                core=core.cid,
                kind=b.kind,
                queue=(qid.src, qid.dst, qid.vclass.value),
                index=b.index,
                tag=tag,
            ))
        return tuple(out)

    def _deadlock_report(self) -> str:
        lines = ["deadlock: no core can make progress"]
        for core in self.cores:
            if core.halted:
                lines.append(f"  core {core.cid}: halted @ {core.time:.0f}")
                continue
            b = core.blocked
            fn = core.program.functions[core.fn]
            where = f"{fn.name}:{core.pc} {fn.instrs[core.pc]!r}"
            if b is None:
                lines.append(f"  core {core.cid}: runnable?! at {where}")
            else:
                lines.append(
                    f"  core {core.cid}: waiting {b.kind}#{b.index} of "
                    f"{b.queue.qid!r} since {b.since:.0f} at {where}"
                )
        for q in self.queues.values():
            lines.append(
                f"  {q.qid!r}: enq={q.n_enq} deq={q.n_deq} depth={q.depth}"
            )
        return "\n".join(lines)
