"""Hardware core-to-core queues (paper §II, Fig 3, Fig 11).

Timing semantics reproduced exactly:

* an ``enqueue`` completing at time ``T_A`` makes its value *accessible*
  to the consumer at ``T_A + transfer_latency`` (Fig 11);
* a ``dequeue`` issued earlier stalls until that point; a dequeue issued
  later proceeds immediately;
* the queue holds at most ``depth`` values; the ``m``-th enqueue cannot
  complete before the ``(m - depth)``-th dequeue has freed a slot;
* FIFO order, single producer, single consumer (one queue per ordered
  core pair and value class).

The simulator processes cores as independent timelines (conservative
dataflow replay), so the queue records the full enqueue/dequeue history
with timestamps; "not yet processed" and "stalls in simulated time" are
distinct notions (see :mod:`repro.sim.machine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import QueueId


@dataclass
class HwQueue:
    qid: QueueId
    depth: int
    transfer_latency: int

    values: list = field(default_factory=list)        # by entry index
    ready_times: list = field(default_factory=list)   # enq completion + latency
    deq_times: list = field(default_factory=list)     # dequeue completion times
    n_enq: int = 0
    n_deq: int = 0
    max_outstanding: int = 0
    #: simulated cycles producers stalled on a full queue / consumers
    #: stalled on an empty or in-flight one (accumulated by the cores;
    #: the adaptive runtime's per-queue pressure/starvation signal).
    stall_full: float = 0.0
    stall_empty: float = 0.0
    #: optional FaultInjector (see :mod:`repro.faults`) consulted on
    #: every admitted transfer; None in normal operation.
    injector: object | None = None

    # -- producer side ---------------------------------------------------
    def slot_blocker(self) -> int | None:
        """Index of the dequeue that must be *processed* before the next
        enqueue can be admitted, or None if a slot is free."""
        m = self.n_enq
        if m - self.depth >= self.n_deq:
            return m - self.depth
        return None

    def slot_free_time(self) -> float:
        """Simulated time at which the next enqueue finds a free slot
        (0 if the queue never filled)."""
        m = self.n_enq
        if m - self.depth >= 0:
            return self.deq_times[m - self.depth]
        return 0.0

    def push(self, value, ready_time: float) -> bool:
        """Admit a transfer; returns False if it was dropped in flight
        (fault injection only — the producer has already paid for the
        enqueue and is unaware, exactly like lost hardware flits)."""
        assert self.slot_blocker() is None, "push on full queue"
        if self.injector is not None:
            value, ready_time, dropped = self.injector.on_enqueue(
                self.qid, self.n_enq, value, ready_time
            )
            if dropped:
                return False
        self.values.append(value)
        self.ready_times.append(ready_time)
        self.n_enq += 1
        self.max_outstanding = max(self.max_outstanding, self.n_enq - self.n_deq)
        return True

    # -- consumer side ---------------------------------------------------
    def entry_blocker(self) -> int | None:
        """Index of the enqueue that must be processed before the next
        dequeue can proceed, or None if an entry is available."""
        if self.n_deq >= self.n_enq:
            return self.n_deq
        return None

    def head_ready_time(self) -> float:
        return self.ready_times[self.n_deq]

    def pop(self, deq_completion: float):
        assert self.entry_blocker() is None, "pop on empty queue"
        v = self.values[self.n_deq]
        self.deq_times.append(deq_completion)
        self.n_deq += 1
        return v

    # -- runtime reconfiguration ------------------------------------------
    def grow(self, new_depth: int) -> bool:
        """Raise the capacity to ``new_depth`` (monotone: never shrinks).

        Value-safe by construction — FIFO contents are depth-independent
        — and deadlock-safe: capacity wait-for edges can only relax.
        The new capacity applies to every not-yet-admitted enqueue; in
        simulated time the grow takes effect at the blocked producer's
        retry.  Shrinking mid-run is forbidden (it could strand an
        admitted transfer); the adaptive runtime shrinks only at epoch
        boundaries, behind a full static re-check.
        """
        if new_depth <= self.depth:
            return False
        self.depth = new_depth
        return True

    def occupancy_histogram(self) -> dict[int, float]:
        """Exact time-weighted occupancy distribution.

        Maps occupancy level -> simulated cycles the queue spent at
        that level (empty intervals excluded), from the full
        enqueue-visibility / dequeue-completion history the replay
        already records.  This is the controller's starvation/pressure
        signal and feeds the ``repro profile`` histograms.
        """
        events = [(t, 1) for t in self.ready_times]
        events += [(t, -1) for t in self.deq_times]
        events.sort()
        hist: dict[int, float] = {}
        occ = 0
        last: float | None = None
        for t, d in events:
            if last is not None and t > last and occ > 0:
                hist[occ] = hist.get(occ, 0.0) + (t - last)
            occ += d
            last = t
        return hist

    # -- end-of-run checks ------------------------------------------------
    @property
    def outstanding(self) -> int:
        return self.n_enq - self.n_deq

    def __repr__(self) -> str:
        return (
            f"HwQueue({self.qid!r}, enq={self.n_enq}, deq={self.n_deq}, "
            f"depth={self.depth})"
        )
