"""Fast simulation paths: specialized closures and numpy batching.

Two accelerated back ends for the cycle-level simulator, both provably
bit-identical to the reference :class:`repro.sim.core.Core` (the
differential battery in ``tests/test_sim_fast.py`` and the fuzz legs in
:mod:`repro.fuzz` enforce it):

* :mod:`.specialize` pre-compiles each lowered
  :class:`~repro.isa.program.Program` into a per-core Python closure —
  instruction decode hoisted out of the cycle loop, operands bound into
  locals, registers kept in local variables between queue operations.
* :mod:`.batch` advances many workload lanes of the *same* kernel and
  machine configuration in lockstep with vectorized register files,
  falling back per lane (:class:`Divergence`) when control flow or
  integer values stop being lane-uniform.

Selection happens through ``CompilerConfig.sim_mode`` (``"reference"``
| ``"specialized"`` | ``"batched"``), wired via
:class:`repro.sim.machine.Machine` and
:func:`repro.runtime.exec.execute_kernel`.
"""

from .batch import BatchCore, BatchMemory, Divergence, run_batch
from .specialize import (
    CODEGEN_VERSION,
    SpecializedCore,
    clear_runner_cache,
    counters,
    reset_counters,
    runner_factory,
    source_key,
)

#: the supported values of ``CompilerConfig.sim_mode``.
SIM_MODES = ("reference", "specialized", "batched")

__all__ = [
    "BatchCore",
    "BatchMemory",
    "CODEGEN_VERSION",
    "Divergence",
    "SIM_MODES",
    "SpecializedCore",
    "clear_runner_cache",
    "counters",
    "reset_counters",
    "run_batch",
    "runner_factory",
    "source_key",
]
