"""Lockstep numpy batching: advance many workload lanes in one machine.

A sweep grid re-simulates the *same compiled kernel* under many seeds:
identical programs, identical machine parameters, different input
data.  Control flow and timing in this ISA depend only on integer
values (trip counts, indices, conditions), so as long as every integer
stays **lane-uniform**, all lanes execute the same instruction sequence
with the same timestamps — one interpretation pass can carry the whole
batch, with only the float data plane vectorized across lanes.

That is the invariant this module enforces rather than assumes:

* lane-varying values are always ``np.float64`` arrays of shape
  ``(L,)``; integers (and lane-uniform floats) are plain Python
  scalars;
* any operation that would make an integer, a condition, a memory
  index or a call target lane-varying raises :class:`Divergence`;
* float arithmetic is vectorized only where NumPy is bit-identical to
  the scalar reference (``+ - *``, IEEE division, ``sqrt``, ``neg``,
  ``abs``); everything with diverging corner semantics (``min``/
  ``max`` NaN ordering, ``fmod``, ``pow`` overflow, libm-backed
  ``exp``/``log``/``sin``/``cos``) is evaluated per lane through
  :mod:`repro.ops`, so every lane's result is *computed by* the
  reference semantics, not an approximation of them.

:class:`Divergence` is control flow, not failure: the caller
(:func:`repro.runtime.exec.execute_kernel`,
:func:`repro.experiments.common.run_kernel_batch`) catches it and
re-runs the affected cells on the scalar path.
"""

from __future__ import annotations

import copy

import numpy as np

from ... import ops as _ops
from ...ir.types import F64, I64
from ...isa.instructions import Instr
from ..core import Core, SimError, _Blocked
from ..machine import Machine, MachineParams, SimResult
from ..memory import MemoryFault, SharedMemory
from ..queues import HwQueue


class Divergence(Exception):
    """The batch can no longer run in lockstep (lane-varying integer,
    condition, index or call target).  Deliberately *not* a
    :class:`~repro.sim.core.SimError`: it means "split the batch", not
    "the simulation failed"."""


# -- vector-aware operator semantics ------------------------------------

#: float ops where the NumPy ufunc is IEEE-bit-identical to the scalar
#: reference (see module docstring for why the rest are excluded).
_NP_FLOAT_BIN = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
}


def _lanes(x, n: int) -> list:
    return x.tolist() if isinstance(x, np.ndarray) else [x] * n


def _pack(vals: list, is_float: bool, what: str):
    """List of per-lane reference results -> invariant-typed value."""
    if is_float:
        return np.array(vals, dtype=np.float64)
    v0 = vals[0]
    for v in vals[1:]:
        if v != v0:
            raise Divergence(f"lane-divergent int result in {what}")
    return v0


def _vec_binop(op: str, a, b, is_float: bool):
    av = isinstance(a, np.ndarray)
    bv = isinstance(b, np.ndarray)
    if not av and not bv:
        return _ops.eval_binop(op, a, b, F64 if is_float else I64)
    if is_float:
        fast = _NP_FLOAT_BIN.get(op)
        if fast is not None:
            return fast(a, b)
        if op == "div":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.divide(a, b)
    n = len(a) if av else len(b)
    la, lb = _lanes(a, n), _lanes(b, n)
    dt = F64 if is_float else I64
    vals = [_ops.eval_binop(op, la[i], lb[i], dt) for i in range(n)]
    return _pack(vals, is_float, op)


def _vec_unop(op: str, a, is_float: bool):
    if not isinstance(a, np.ndarray):
        return _ops.eval_unop(op, a, F64 if is_float else I64)
    if op == "neg" and is_float:
        return np.negative(a)
    vals = [_ops.eval_unop(op, v, F64 if is_float else I64)
            for v in a.tolist()]
    return _pack(vals, is_float, op)


def _vec_call(fn: str, args: list):
    n = 0
    for x in args:
        if isinstance(x, np.ndarray):
            n = len(x)
            break
    if n == 0:
        return _ops.eval_call(fn, args)
    if fn == "sqrt":
        with np.errstate(invalid="ignore"):
            return np.sqrt(args[0])
    if fn == "abs":
        return np.abs(args[0])
    lanes = [_lanes(x, n) for x in args]
    vals = [_ops.eval_call(fn, [la[i] for la in lanes]) for i in range(n)]
    return _pack(vals, isinstance(vals[0], float), fn)


def _as_index(v, what: str) -> int:
    if isinstance(v, np.ndarray):
        raise Divergence(f"lane-divergent {what}")
    return int(v)


# -- batched memory ------------------------------------------------------


class BatchMemory(SharedMemory):
    """Shared memory with a leading lane axis: ``name -> (L, n)``.

    Bounds and dtype semantics match :class:`SharedMemory` per lane
    (all lanes share shapes by construction); float loads return the
    whole ``(L,)`` column, integer loads must be lane-uniform.
    """

    def __init__(self, arrays: dict[str, np.ndarray], lanes: int) -> None:
        super().__init__(arrays)
        self.lanes = lanes

    def load(self, name: str, idx: int):
        buf = self.arrays[name]
        n = buf.shape[1]
        if not 0 <= idx < n:
            raise MemoryFault(f"load {name}[{idx}] out of bounds (len {n})")
        col = buf[:, idx]
        if self.is_float[name]:
            return col.copy()
        v0 = col[0]
        if not (col == v0).all():
            raise Divergence(f"lane-divergent int load {name}[{idx}]")
        return int(v0)

    def store(self, name: str, idx: int, value) -> None:
        buf = self.arrays[name]
        n = buf.shape[1]
        if not 0 <= idx < n:
            raise MemoryFault(f"store {name}[{idx}] out of bounds (len {n})")
        buf[:, idx] = value


# -- batched core --------------------------------------------------------


class BatchCore(Core):
    """Reference core with lane-aware value semantics.

    ``run_slice`` is a faithful transcription of
    :meth:`repro.sim.core.Core.run_slice` — identical processing order,
    timing arithmetic and stat bookkeeping (so even the processing-
    order-dependent ``max_outstanding`` matches the reference) — with
    every value operation routed through the ``_vec_*`` helpers above.
    Observation, race-detection and fault hooks are deliberately
    absent: the machine refuses to build batched cores when any of
    those are attached.
    """

    def run_slice(self, budget: int) -> int:
        self.blocked = None
        executed = 0
        regs = self.regs
        lat = self.lat
        functions = self.program.functions
        fn_obj = functions[self.fn]
        code = fn_obj.instrs
        labels = fn_obj.labels

        while executed < budget:
            if self.pc >= len(code):
                raise SimError(
                    f"core {self.cid}: fell off end of {fn_obj.name}"
                )
            ins: Instr = code[self.pc]
            op = ins.op

            if op == "bin":
                regs[ins.dst] = _vec_binop(
                    ins.fn, self._val(ins.a), self._val(ins.b), ins.is_float
                )
                self.time += lat.binop(ins.fn, ins.is_float)
                self.pc += 1
            elif op == "load":
                idx = _as_index(self._val(ins.a), f"load index {ins.array}")
                regs[ins.dst] = self.memory.load(ins.array, idx)
                self.time += self.cache.access(ins.array, idx, lat)
                self.stats.mem += 1
                self.pc += 1
            elif op == "store":
                idx = _as_index(self._val(ins.a), f"store index {ins.array}")
                self.memory.store(ins.array, idx, self._val(ins.b))
                self.cache.touch(ins.array, idx)
                self.time += lat.store
                self.stats.mem += 1
                self.pc += 1
            elif op == "call":
                args = [
                    self._val(x)
                    for x in (ins.a, ins.b, ins.c)
                    if x is not None
                ]
                regs[ins.dst] = _vec_call(ins.fn, args)
                self.time += lat.call[ins.fn]
                self.pc += 1
            elif op == "un":
                regs[ins.dst] = _vec_unop(
                    ins.fn, self._val(ins.a), ins.is_float
                )
                self.time += lat.unop
                self.pc += 1
            elif op == "select":
                c = self._val(ins.c)
                if isinstance(c, np.ndarray):
                    raise Divergence("lane-divergent select condition")
                v = self._val(ins.a) if c else self._val(ins.b)
                if ins.is_float:
                    v = v if isinstance(v, np.ndarray) else float(v)
                regs[ins.dst] = v
                self.time += lat.select
                self.pc += 1
            elif op == "mov":
                regs[ins.dst] = self._val(ins.a)
                self.time += lat.mov
                self.pc += 1
            elif op == "enq":
                q: HwQueue = self.queues(ins.queue)
                blocker = q.slot_blocker()
                if blocker is not None:
                    self.blocked = _Blocked("slot", q, blocker, self.time)
                    self.stats.instrs += executed
                    return executed
                start = self.time
                wait = q.slot_free_time() - start
                if wait < 0.0:
                    wait = 0.0
                completion = start + wait + lat.enqueue
                self.stats.queue_stall += wait
                self.stats.stall_full += wait
                q.stall_full += wait
                q.push(self._val(ins.a), completion + q.transfer_latency)
                self.time = completion
                self.stats.enq_ops += 1
                self.pc += 1
            elif op == "deq":
                q = self.queues(ins.queue)
                blocker = q.entry_blocker()
                if blocker is not None:
                    self.blocked = _Blocked("entry", q, blocker, self.time)
                    self.stats.instrs += executed
                    return executed
                start = self.time
                ready = q.head_ready_time()
                wait = ready - start
                if wait < 0.0:
                    wait = 0.0
                completion = start + wait + lat.dequeue
                self.stats.queue_stall += wait
                q.stall_empty += wait
                if wait > 0.0:
                    empty = ready - q.transfer_latency - start
                    if empty < 0.0:
                        empty = 0.0
                    self.stats.stall_empty += empty
                    self.stats.stall_transfer += wait - empty
                regs[ins.dst] = q.pop(completion)
                self.time = completion
                self.stats.deq_ops += 1
                self.pc += 1
            elif op == "fjp":
                v = self._val(ins.a)
                if isinstance(v, np.ndarray):
                    raise Divergence("lane-divergent branch condition")
                self.pc = labels[ins.label] if not v else self.pc + 1
                self.time += lat.branch
            elif op == "tjp":
                v = self._val(ins.a)
                if isinstance(v, np.ndarray):
                    raise Divergence("lane-divergent branch condition")
                self.pc = labels[ins.label] if v else self.pc + 1
                self.time += lat.branch
            elif op == "jp":
                self.pc = labels[ins.label]
                self.time += lat.branch
            elif op == "lab":
                self.pc += 1
                executed -= 1
            elif op == "callr":
                target = _as_index(self._val(ins.a), "call target")
                if not 0 <= target < len(functions):
                    raise SimError(
                        f"core {self.cid}: bad function index {target}"
                    )
                self.frames.append((self.fn, self.pc + 1))
                self.fn = target
                fn_obj = functions[self.fn]
                code = fn_obj.instrs
                labels = fn_obj.labels
                self.pc = 0
                self.time += lat.branch
            elif op == "ret":
                if not self.frames:
                    raise SimError(f"core {self.cid}: ret with empty stack")
                self.fn, self.pc = self.frames.pop()
                fn_obj = functions[self.fn]
                code = fn_obj.instrs
                labels = fn_obj.labels
                self.time += lat.branch
            elif op == "halt":
                self.halted = True
                self.stats.instrs += executed + 1
                return executed + 1
            else:  # pragma: no cover - defensive
                raise SimError(f"core {self.cid}: bad opcode {op}")
            executed += 1
        self.stats.instrs += executed
        return executed


# -- whole-batch driver --------------------------------------------------


def run_batch(
    kernel, workloads, params: MachineParams | None = None
) -> list[SimResult]:
    """Execute ``kernel`` once over every workload lane in lockstep.

    Mirrors :func:`repro.runtime.exec.execute_kernel` (same validation,
    preload and machine construction) for a *list* of workloads sharing
    one kernel and machine configuration.  Returns one
    :class:`SimResult` per lane, each bit-identical — values, cycles,
    stall attribution — to what a scalar run of that lane would
    produce.  Raises :class:`Divergence` when lockstep is impossible;
    the caller re-runs the affected lanes on the scalar path.
    """
    if not workloads:
        raise ValueError("run_batch needs at least one workload")
    loop = kernel.plan.loop
    for wl in workloads:
        wl.validate_for(loop)
    base = workloads[0]
    names = sorted(base.arrays)
    for wl in workloads[1:]:
        if sorted(wl.arrays) != names:
            raise Divergence("workload array sets differ across lanes")
        for k in names:
            if (wl.arrays[k].shape != base.arrays[k].shape
                    or wl.arrays[k].dtype != base.arrays[k].dtype):
                raise Divergence(f"array {k!r} shape/dtype differs across lanes")
    arrays = {k: np.stack([wl.arrays[k] for wl in workloads]) for k in names}

    preload: dict[int, dict] = {0: {}}
    for p in loop.params:
        if p.dtype.is_float:
            vals = [float(wl.scalars[p.name]) for wl in workloads]
            v0 = vals[0]
            if all(v == v0 for v in vals[1:]):
                preload[0][p.name] = v0
            else:
                preload[0][p.name] = np.array(vals, dtype=np.float64)
        else:
            ints = [int(wl.scalars[p.name]) for wl in workloads]
            if any(v != ints[0] for v in ints[1:]):
                raise Divergence(f"lane-divergent int param {p.name!r}")
            preload[0][p.name] = ints[0]
    preload[0].update(kernel.dispatch_preload(None))

    memory = BatchMemory(arrays, lanes=len(workloads))
    machine = Machine(
        kernel.programs, memory, params,
        preload_regs=preload, sim_mode="batched",
    )
    result = machine.run(live_out=loop.live_out, primary=0)

    out = []
    for lane in range(len(workloads)):
        out.append(SimResult(
            cycles=result.cycles,
            core_times=list(result.core_times),
            core_stats=copy.deepcopy(result.core_stats),
            arrays={k: arrays[k][lane].copy() for k in names},
            scalars={
                k: (float(v[lane]) if isinstance(v, np.ndarray) else v)
                for k, v in result.scalars.items()
            },
            queue_stats=copy.deepcopy(result.queue_stats),
            total_instrs=result.total_instrs,
        ))
    return out
