"""Specialize lowered Programs into compiled per-core Python closures.

The reference :class:`repro.sim.core.Core` interprets ISA dicts one
instruction per Python dispatch: every cycle pays operand decoding,
register-dict traffic and a chain of opcode string comparisons.  This
module removes all of it ahead of time, the same way the paper keeps
loop state in registers to make the dispatch cheap (SNIPPETS.md
Snippet 1, applied to the interpreter loop):

* each :class:`~repro.isa.program.Program` is translated **once** into
  Python source for a *generator* that simulates the whole core —
  instruction decode hoisted out of the cycle loop, operands bound
  into locals, per-op latencies folded into factory-bound constants
  and coalesced per straight-line segment;
* registers live in the generator frame as Python locals for the
  entire run (synced in once at the first slice, out once at halt);
  suspension points — slice budget, blocked queues — are ``yield``
  sites, so resuming a core is one ``generator.send`` instead of a
  dict round-trip (undefined-register reads surface as
  :class:`~repro.sim.core.SimError`, exactly like the reference);
* control flow becomes a block-dispatch loop: basic blocks start at
  function entries, jump targets, queue instructions (they double as
  suspend/resume points for the conservative dataflow replay) and
  call-return sites.

Semantics are *bit-identical* to the reference core: same values, same
simulated timestamps, same stall attribution, same failure modes.  The
only intentional difference is processing granularity — the slice
budget is checked at block boundaries instead of per instruction, so a
slice may overshoot by at most one straight-line block.  Simulated
time is processing-order independent by design (see
:mod:`repro.sim.machine`), so results are unaffected; the one
processing-order *statistic* (``QueueStat.max_outstanding``) is
already slice-budget-dependent in the reference and is excluded from
the differential contract.

Generated source is content-addressed: cached in-process by program
digest and persisted in the result store (record kind ``"src"``)
alongside compile artifacts, so a warm store performs zero fast-path
compilations.
"""

from __future__ import annotations

import math

from .. import core as _core_mod
from ... import ops as _ops
from ..core import Core, SimError, _Blocked
from ..memory import MemoryFault
from ...isa.instructions import Imm, QueueId
from ...isa.program import Program

#: bump when the generated code changes shape — invalidates every
#: cached ``src`` record without touching run/seq records.
CODEGEN_VERSION = 2

#: blocks per chunk in the two-level dispatch (keeps the comparison
#: chain short for programs with many blocks).
_DISPATCH_CHUNK = 8

_UNSET = object()

#: session counters: ``codegen`` counts actual source generations,
#: ``mem_hit`` in-process runner-cache hits, ``disk_hit`` store hits.
_COUNTERS = {"codegen": 0, "mem_hit": 0, "disk_hit": 0}

#: in-process cache: program source digest -> make_runner factory.
_RUNNERS: dict[str, object] = {}


def counters() -> dict[str, int]:
    """Snapshot of the specialization counters."""
    return dict(_COUNTERS)


def reset_counters() -> None:
    for k in _COUNTERS:
        _COUNTERS[k] = 0


def clear_runner_cache() -> None:
    """Drop the in-process factory cache (tests simulate cold starts)."""
    _RUNNERS.clear()


def source_key(program: Program) -> str:
    """Content address of a program's generated source.

    Memoized on the program object — programs are immutable after
    lowering, and hashing the full dump on every core construction
    would dominate short simulations.
    """
    key = getattr(program, "_specialize_key", None)
    if key is None:
        from ...store.keys import SCHEMA_VERSION, stable_digest

        key = stable_digest(
            {
                "schema": SCHEMA_VERSION,
                "kind": "src",
                "codegen": CODEGEN_VERSION,
                "program": program.dump(),
            }
        )
        program._specialize_key = key
    return key


# -- code generation ----------------------------------------------------


def _queue_ids(program: Program) -> list[QueueId]:
    """Queue ids in first-appearance order (deterministic, so a source
    loaded from the store binds the same ``_QIDS`` indices)."""
    out: list[QueueId] = []
    seen = set()
    for fn in program.functions:
        for ins in fn.instrs:
            if ins.queue is not None and ins.queue not in seen:
                seen.add(ins.queue)
                out.append(ins.queue)
    return out


class _Gen:
    """Single-use source generator for one program."""

    def __init__(self, program: Program):
        self.program = program
        self.lines: list[str] = []
        self.regs: dict[str, str] = {}          # register name -> local
        self.arrays: dict[str, int] = {}        # array name -> index
        self.lats: dict[tuple, str] = {}        # latency key -> local
        self.lat_exprs: dict[str, str] = {}     # local -> factory expr
        self.combos: dict[tuple, str] = {}      # coalesced-cost -> local
        self.combo_exprs: dict[str, str] = {}
        self.qids = {q: i for i, q in enumerate(_queue_ids(program))}
        # pending straight-line costs, coalesced until the next point
        # that observes _t (queue op) or executed (block exit / yield)
        self._pend: dict[str, int] = {}
        self._pend_n = 0

    # -- small helpers --------------------------------------------------

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def reg(self, name: str) -> str:
        local = self.regs.get(name)
        if local is None:
            local = f"_r{len(self.regs)}"
            self.regs[name] = local
        return local

    def val(self, x) -> str:
        """Render an operand (register local or immediate literal)."""
        if isinstance(x, Imm):
            v = x.value
            if isinstance(v, float):
                if v != v:
                    return "_NAN"
                if v == math.inf:
                    return "_INF"
                if v == -math.inf:
                    return "(-_INF)"
            return f"({v!r})"
        return self.reg(x)

    def arr(self, name: str) -> int:
        idx = self.arrays.get(name)
        if idx is None:
            idx = len(self.arrays)
            self.arrays[name] = idx
        return idx

    def lat(self, key: tuple, expr: str) -> str:
        local = self.lats.get(key)
        if local is None:
            local = f"_c{len(self.lats)}"
            self.lats[key] = local
            self.lat_exprs[local] = expr
        return local

    def lat_bin(self, fn: str, is_float: bool) -> str:
        table = "float_bin" if is_float else "int_bin"
        return self.lat(("bin", fn, is_float), f"_lat.{table}[{fn!r}]")

    def lat_attr(self, attr: str) -> str:
        return self.lat(("attr", attr), f"_lat.{attr}")

    # -- cost coalescing ------------------------------------------------

    def cost(self, lat_local: str | None) -> None:
        """Account one instruction (optionally with a constant latency)
        into the pending straight-line segment."""
        if lat_local is not None:
            self._pend[lat_local] = self._pend.get(lat_local, 0) + 1
        self._pend_n += 1

    def flush(self, d: int) -> None:
        """Emit the pending segment costs.  Must precede anything that
        reads ``_t`` (queue timing) or ``executed`` (budget check at
        loop top, yields), i.e. every exit from straight-line code."""
        if self._pend:
            key = tuple(sorted(self._pend.items()))
            if len(key) == 1 and key[0][1] == 1:
                expr = key[0][0]
            else:
                expr = self.combos.get(key)
                if expr is None:
                    expr = f"_k{len(self.combos)}"
                    self.combos[key] = expr
                    self.combo_exprs[expr] = " + ".join(
                        f"{n} * {c}" if n > 1 else c for c, n in key
                    )
            self.emit(d, f"_t += {expr}")
            self._pend = {}
        if self._pend_n:
            self.emit(d, f"executed += {self._pend_n}")
            self._pend_n = 0

    def yield_site(self, d: int) -> None:
        """Emit the suspend protocol: flush stats/time, yield the slice
        count, reset per-slice state on resume."""
        e = self.emit
        e(d, "_tot += executed")
        e(d, "_st.instrs = _tot")
        e(d, "_st.queue_stall = _qstall")
        e(d, "_st.stall_full = _sfull")
        e(d, "_st.stall_empty = _sempty")
        e(d, "_st.stall_transfer = _stransfer")
        e(d, "_st.mem = _nmem + 0.0")
        e(d, "_st.enq_ops = _nenq")
        e(d, "_st.deq_ops = _ndeq")
        e(d, "_core.time = _t")
        e(d, "budget = yield executed")
        e(d, "executed = 0")
        e(d, "_core.blocked = None")

    # -- block structure ------------------------------------------------

    def leaders(self) -> dict[tuple[int, int], int]:
        """Map (function, pc) of every block entry to its block id."""
        entries: list[tuple[int, int]] = []
        for fidx, fn in enumerate(self.program.functions):
            pts = {0, len(fn.instrs)}
            for pc, ins in enumerate(fn.instrs):
                if ins.op in ("enq", "deq"):
                    pts.add(pc)
                elif ins.op == "callr":
                    pts.add(pc + 1)
                elif ins.op in ("jp", "fjp", "tjp"):
                    pts.add(fn.labels[ins.label])
            entries.extend((fidx, pc) for pc in sorted(pts))
        return {key: i for i, key in enumerate(entries)}

    # -- instruction bodies ---------------------------------------------

    def gen_bin(self, d: int, ins) -> None:
        a, b, dst = self.val(ins.a), self.val(ins.b), self.reg(ins.dst)
        fn, isf = ins.fn, ins.is_float
        if fn in ("add", "sub", "mul"):
            op = {"add": "+", "sub": "-", "mul": "*"}[fn]
            expr = f"{a} {op} {b}"
            expr = f"float({expr})" if isf else f"int({expr})"
        elif fn == "div":
            expr = (f"_FDIV(float({a}), float({b}))" if isf
                    else f"_IDIV(int({a}), int({b}))")
        elif fn == "mod":
            expr = (f"(_FMOD({a}, {b}) if {b} != 0.0 else _NAN)" if isf
                    else f"_IMOD(int({a}), int({b}))")
        elif fn in ("min", "max"):
            expr = f"{fn}({a}, {b})"
            expr = f"float({expr})" if isf else f"int({expr})"
        elif fn in ("lt", "le", "gt", "ge", "eq", "ne"):
            op = {"lt": "<", "le": "<=", "gt": ">",
                  "ge": ">=", "eq": "==", "ne": "!="}[fn]
            expr = f"int({a} {op} {b})"
        elif fn == "and":
            expr = f"int(bool({a}) and bool({b}))"
        elif fn == "or":
            expr = f"int(bool({a}) or bool({b}))"
        elif fn == "xor":
            expr = f"int(bool({a}) != bool({b}))"
        elif fn == "shl":
            expr = f"int({a}) << (int({b}) & 63)"
        elif fn == "shr":
            expr = f"int({a}) >> (int({b}) & 63)"
        else:  # pragma: no cover - lowering never emits others
            raise ValueError(f"unknown binop {fn}")
        self.emit(d, f"{dst} = {expr}")
        self.cost(self.lat_bin(fn, isf))

    def gen_instr(self, d: int, ins) -> None:
        """Emit one non-control, non-queue instruction."""
        op = ins.op
        if op == "bin":
            self.gen_bin(d, ins)
        elif op == "load":
            k = self.arr(ins.array)
            self.emit(d, f"_i = int({self.val(ins.a)})")
            self.emit(d, f"if _ab{k} is None:")
            self.emit(d + 1, f"raise KeyError({ins.array!r})")
            self.emit(d, f"if not 0 <= _i < _al{k}:")
            self.emit(d + 1,
                      f"raise _MemoryFault('load {ins.array}[%d] out of "
                      f"bounds (len %d)' % (_i, _al{k}))")
            self.emit(d, f"_v = _ab{k}[_i]")
            self.emit(d, f"{self.reg(ins.dst)} = float(_v) if _af{k} else int(_v)")
            self.emit(d, f"_t += _cacc({ins.array!r}, _i, _lat)")
            self.emit(d, "_nmem += 1")
            self.cost(None)
        elif op == "store":
            k = self.arr(ins.array)
            self.emit(d, f"_i = int({self.val(ins.a)})")
            self.emit(d, f"if _ab{k} is None:")
            self.emit(d + 1, f"raise KeyError({ins.array!r})")
            self.emit(d, f"if not 0 <= _i < _al{k}:")
            self.emit(d + 1,
                      f"raise _MemoryFault('store {ins.array}[%d] out of "
                      f"bounds (len %d)' % (_i, _al{k}))")
            self.emit(d, f"_ab{k}[_i] = {self.val(ins.b)}")
            self.emit(d, f"_ctouch({ins.array!r}, _i)")
            self.emit(d, "_nmem += 1")
            self.cost(self.lat_attr("store"))
        elif op == "call":
            args = ", ".join(
                self.val(x) for x in (ins.a, ins.b, ins.c) if x is not None
            )
            self.emit(d, f"{self.reg(ins.dst)} = _EC({ins.fn!r}, ({args},))")
            self.cost(self.lat(("call", ins.fn), f"_lat.call[{ins.fn!r}]"))
        elif op == "un":
            a, dst = self.val(ins.a), self.reg(ins.dst)
            if ins.fn == "neg":
                expr = f"float(-{a})" if ins.is_float else f"int(-{a})"
            else:
                expr = f"int(not {a})"
            self.emit(d, f"{dst} = {expr}")
            self.cost(self.lat_attr("unop"))
        elif op == "select":
            a, b, c = self.val(ins.a), self.val(ins.b), self.val(ins.c)
            expr = f"{a} if {c} else {b}"
            if ins.is_float:
                expr = f"float({expr})"
            self.emit(d, f"{self.reg(ins.dst)} = {expr}")
            self.cost(self.lat_attr("select"))
        elif op == "mov":
            self.emit(d, f"{self.reg(ins.dst)} = {self.val(ins.a)}")
            self.cost(self.lat_attr("mov"))
        else:  # pragma: no cover - control ops handled by gen_block
            raise ValueError(f"unexpected op {op}")

    def gen_queue_op(self, d: int, fidx: int, pc: int, ins) -> None:
        # queue timing reads _t, so the preceding segment must land first
        self.flush(d)
        k = self.qids[ins.queue]
        self.emit(d, f"_q = _qs[{k}]")
        self.emit(d, "if _q is None:")
        self.emit(d + 1, f"_q = _qs[{k}] = _queues(_QIDS[{k}])")
        # fast paths inline the HwQueue arithmetic (slot/entry checks,
        # timing, push/pop bookkeeping) verbatim; the method-call slow
        # path survives only for blocked waits and fault injection.
        if ins.op == "enq":
            self.emit(d, "_m = _q.n_enq")
            self.emit(d, "if _m - _q.depth >= _q.n_deq:")
            self.emit(d + 1, "while True:")
            self.emit(d + 2, "_w = _q.slot_blocker()")
            self.emit(d + 2, "if _w is None:")
            self.emit(d + 3, "break")
            self.emit(d + 2, '_core.blocked = _Blocked("slot", _q, _w, _t)')
            self.emit(d + 2, f"_core.fn = {fidx}; _core.pc = {pc}")
            self.yield_site(d + 2)
            self.emit(d + 1, "_m = _q.n_enq")
            self.emit(d, "_m -= _q.depth")
            self.emit(d, "_w = _q.deq_times[_m] - _t if _m >= 0 else 0.0")
            self.emit(d, "if _w < 0.0:")
            self.emit(d + 1, "_w = 0.0")
            self.emit(d, f"_comp = _t + _w + {self.lat_attr('enqueue')}")
            self.emit(d, "_qstall += _w")
            self.emit(d, "_sfull += _w")
            self.emit(d, "_q.stall_full += _w")
            self.emit(d, "if _q.injector is None:")
            self.emit(d + 1, f"_q.values.append({self.val(ins.a)})")
            self.emit(d + 1, "_q.ready_times.append(_comp + _q.transfer_latency)")
            self.emit(d + 1, "_q.n_enq += 1")
            self.emit(d + 1, "_o = _q.n_enq - _q.n_deq")
            self.emit(d + 1, "if _o > _q.max_outstanding:")
            self.emit(d + 2, "_q.max_outstanding = _o")
            self.emit(d, "else:")
            self.emit(d + 1,
                      f"_q.push({self.val(ins.a)}, _comp + _q.transfer_latency)")
            self.emit(d, "_t = _comp")
            self.emit(d, "_nenq += 1")
        else:  # deq
            self.emit(d, "_m = _q.n_deq")
            self.emit(d, "if _m >= _q.n_enq:")
            self.emit(d + 1, "while True:")
            self.emit(d + 2, "_w = _q.entry_blocker()")
            self.emit(d + 2, "if _w is None:")
            self.emit(d + 3, "break")
            self.emit(d + 2, '_core.blocked = _Blocked("entry", _q, _w, _t)')
            self.emit(d + 2, f"_core.fn = {fidx}; _core.pc = {pc}")
            self.yield_site(d + 2)
            self.emit(d + 1, "_m = _q.n_deq")
            self.emit(d, "_rdy = _q.ready_times[_m]")
            self.emit(d, "_w = _rdy - _t")
            self.emit(d, "if _w < 0.0:")
            self.emit(d + 1, "_w = 0.0")
            self.emit(d, f"_comp = _t + _w + {self.lat_attr('dequeue')}")
            self.emit(d, "_qstall += _w")
            self.emit(d, "_q.stall_empty += _w")
            self.emit(d, "if _w > 0.0:")
            self.emit(d + 1, "_e = _rdy - _q.transfer_latency - _t")
            self.emit(d + 1, "if _e < 0.0:")
            self.emit(d + 2, "_e = 0.0")
            self.emit(d + 1, "_sempty += _e")
            self.emit(d + 1, "_stransfer += _w - _e")
            self.emit(d, f"{self.reg(ins.dst)} = _q.values[_m]")
            self.emit(d, "_q.deq_times.append(_comp)")
            self.emit(d, "_q.n_deq = _m + 1")
            self.emit(d, "_t = _comp")
            self.emit(d, "_ndeq += 1")
        self.emit(d, "executed += 1")

    def goto(self, d: int, block: int) -> None:
        self.flush(d)
        self.emit(d, f"_b = {block}")
        self.emit(d, "continue")

    def gen_block(self, d: int, fidx: int, start: int,
                  entry: dict[tuple[int, int], int]) -> None:
        fn = self.program.functions[fidx]
        code = fn.instrs
        if start == len(code):
            self.emit(d, f"raise _SimError('core %d: fell off end of "
                         f"{fn.name}' % _cid)")
            return
        pc = start
        while True:
            if pc != start and (fidx, pc) in entry:
                self.goto(d, entry[(fidx, pc)])
                return
            ins = code[pc]
            op = ins.op
            if op == "lab":
                pc += 1  # zero-cost pseudo-instruction
                if pc == len(code):
                    self.goto(d, entry[(fidx, pc)])
                    return
                continue
            if op == "halt":
                self.flush(d)
                self.emit(d, "executed += 1")
                self.emit(d, "_core.halted = True")
                self.emit(d, "_tot += executed")
                self.emit(d, "_st.instrs = _tot")
                self.emit(d, "_st.queue_stall = _qstall")
                self.emit(d, "_st.stall_full = _sfull")
                self.emit(d, "_st.stall_empty = _sempty")
                self.emit(d, "_st.stall_transfer = _stransfer")
                self.emit(d, "_st.mem = _nmem + 0.0")
                self.emit(d, "_st.enq_ops = _nenq")
                self.emit(d, "_st.deq_ops = _ndeq")
                self.emit(d, "_core.time = _t")
                self.emit(d, "_loc = locals()")
                self.emit(d, "for _rn, _rl in _SYNC:")
                self.emit(d + 1, "if _rl in _loc:")
                self.emit(d + 2, "_regs[_rn] = _loc[_rl]")
                self.emit(d, "budget = yield executed")
                self.emit(d, "while True:")
                self.emit(d + 1, "budget = yield 0")
                return
            if op == "jp":
                self.cost(self.lat_attr("branch"))
                self.goto(d, entry[(fidx, fn.labels[ins.label])])
                return
            if op in ("fjp", "tjp"):
                cond = self.val(ins.a)
                self.cost(self.lat_attr("branch"))
                self.flush(d)
                taken = f"not {cond}" if op == "fjp" else cond
                self.emit(d, f"if {taken}:")
                self.emit(d + 1, f"_b = {entry[(fidx, fn.labels[ins.label])]}")
                self.emit(d + 1, "continue")
            elif op == "callr":
                tgt = self.val(ins.a)
                nfunc = len(self.program.functions)
                self.cost(self.lat_attr("branch"))
                self.flush(d)
                self.emit(d, f"_tgt = int({tgt})")
                self.emit(d, f"if not 0 <= _tgt < {nfunc}:")
                self.emit(d + 1, "raise _SimError('core %d: bad function "
                                 "index %d' % (_cid, _tgt))")
                self.emit(d, f"_frames.append(({fidx}, {pc + 1}))")
                self.emit(d, "_b = _FENTRY[_tgt]")
                self.emit(d, "continue")
                return
            elif op == "ret":
                self.cost(self.lat_attr("branch"))
                self.flush(d)
                self.emit(d, "if not _frames:")
                self.emit(d + 1, "raise _SimError('core %d: ret with empty "
                                 "stack' % _cid)")
                self.emit(d, "_rf, _rp = _frames.pop()")
                self.emit(d, "_b = _ENTRY[(_rf, _rp)]")
                self.emit(d, "continue")
                return
            elif op in ("enq", "deq"):
                # pc == start here (queue ops are always block leaders)
                self.gen_queue_op(d, fidx, pc, ins)
            else:
                self.gen_instr(d, ins)
            pc += 1
            if pc == len(code):
                self.goto(d, entry[(fidx, pc)])
                return

    # -- whole module ---------------------------------------------------

    def gen_dispatch(self, d: int, blocks: list[tuple[int, int]],
                     entry: dict[tuple[int, int], int]) -> None:
        """Two-level block dispatch: chunked range tests, then direct
        comparisons within the chunk."""
        n = len(blocks)
        chunks = [
            (lo, min(lo + _DISPATCH_CHUNK, n))
            for lo in range(0, n, _DISPATCH_CHUNK)
        ]
        nested = len(chunks) > 1
        for ci, (lo, hi) in enumerate(chunks):
            bd = d
            if nested:
                kw = "if" if ci == 0 else "elif"
                cond = f"_b < {hi}" if ci < len(chunks) - 1 else "True"
                self.emit(d, f"{kw} {cond}:")
                bd = d + 1
            for i in range(lo, hi):
                kw = "if" if i == lo else "elif"
                self.emit(bd, f"{kw} _b == {i}:")
                fidx, pc = blocks[i]
                self.gen_block(bd + 1, fidx, pc, entry)
            self.emit(bd, "else:")
            self.emit(bd + 1,
                      "raise _SimError('core %d: bad block %d' % (_cid, _b))")

    def generate(self) -> str:
        entry = self.leaders()
        blocks = sorted(entry, key=entry.get)
        body: list[str] = []
        saved, self.lines = self.lines, body
        self.gen_dispatch(4, blocks, entry)
        self.lines = saved
        # after gen: regs / arrays / lats / combos are complete
        e = self.emit
        fentry = tuple(entry[(f, 0)] for f in range(len(self.program.functions)))
        bfn = tuple(f for f, _ in blocks)
        bpc = tuple(p for _, p in blocks)
        e(0, f"# specialized from program {self.program.name!r} "
             f"(codegen v{CODEGEN_VERSION})")
        e(0, f"_ENTRY = {entry!r}")
        e(0, f"_BFN = {bfn!r}")
        e(0, f"_BPC = {bpc!r}")
        e(0, f"_FENTRY = {fentry!r}")
        e(0, f"_SYNC = {list(self.regs.items())!r}")
        e(0, "")
        e(0, "def make_runner(core):")
        e(1, "_core = core")
        e(1, "_cid = core.cid")
        e(1, "_lat = core.lat")
        e(1, "_cacc = core.cache.access")
        e(1, "_ctouch = core.cache.touch")
        e(1, "_queues = core.queues")
        e(1, "_arrays = core.memory.arrays")
        e(1, "_isf = core.memory.is_float")
        e(1, "_st = core.stats")
        for name, k in self.arrays.items():
            e(1, f"_ab{k} = _arrays.get({name!r})")
            e(1, f"_af{k} = _isf.get({name!r}, False)")
            e(1, f"_al{k} = 0 if _ab{k} is None else len(_ab{k})")
        for local, expr in self.lat_exprs.items():
            e(1, f"{local} = {expr}")
        for local, expr in self.combo_exprs.items():
            e(1, f"{local} = {expr}")
        e(1, f"_qs = [None] * {max(1, len(self.qids))}")
        e(1, "def _run():")
        e(2, "budget = yield  # primed before preload; state loads below")
        e(2, "_regs = _core.regs")
        e(2, "_frames = _core.frames")
        for name, local in self.regs.items():
            e(2, f"if {name!r} in _regs: {local} = _regs[{name!r}]")
        e(2, "_t = _core.time")
        e(2, "_b = _ENTRY[(_core.fn, _core.pc)]")
        e(2, "executed = 0")
        e(2, "_tot = 0")
        e(2, "_qstall = 0.0; _sfull = 0.0; _sempty = 0.0; _stransfer = 0.0")
        e(2, "_nmem = 0; _nenq = 0; _ndeq = 0")
        e(2, "_core.blocked = None")
        e(2, "try:")
        e(3, "while True:")
        e(4, "if executed >= budget:")
        e(5, "_core.fn = _BFN[_b]; _core.pc = _BPC[_b]")
        self.yield_site(5)
        self.lines.extend(body)
        e(2, "except UnboundLocalError as _exc:")
        e(3, "raise _SimError('core %d: read of undefined register (%s)'")
        e(3, "                % (_cid, _exc)) from None")
        e(1, "return _run")
        return "\n".join(self.lines) + "\n"


def generate_source(program: Program) -> str:
    """Translate one program to specialized ``make_runner`` source."""
    return _Gen(program).generate()


# -- factory cache (memory + content-addressed store) -------------------


def _namespace(program: Program) -> dict:
    return {
        "_Blocked": _Blocked,
        "_SimError": SimError,
        "_MemoryFault": MemoryFault,
        "_EC": _ops.eval_call,
        "_FDIV": _ops.fdiv,
        "_IDIV": _ops.idiv,
        "_IMOD": _ops.imod,
        "_FMOD": math.fmod,
        "_NAN": float("nan"),
        "_INF": float("inf"),
        "_QIDS": _queue_ids(program),
    }


def runner_factory(program: Program, store=_UNSET):
    """``make_runner`` factory for ``program``: generate or recall.

    Lookup order: in-process cache by source digest, then the
    content-addressed result store (kind ``"src"``), then codegen (and
    persist).  ``store=None`` disables the persistent layer.
    """
    digest = source_key(program)
    factory = _RUNNERS.get(digest)
    if factory is not None:
        _COUNTERS["mem_hit"] += 1
        return factory
    if store is _UNSET:
        from ...store.disk import default_store

        store = default_store()
    src = None
    if store is not None:
        src = store.get_src(digest)
        if src is not None:
            _COUNTERS["disk_hit"] += 1
    if src is None:
        src = generate_source(program)
        _COUNTERS["codegen"] += 1
        if store is not None:
            try:
                store.put_src(digest, program.name, src)
            except OSError:
                pass  # a full disk must not break simulation
    ns = _namespace(program)
    exec(compile(src, f"<specialized:{digest[:12]}>", "exec"), ns)
    factory = ns["make_runner"]
    _RUNNERS[digest] = factory
    return factory


class SpecializedCore(Core):
    """Drop-in :class:`~repro.sim.core.Core` running a compiled generator.

    Same constructor, attributes (``fn``/``pc``/``time``/``blocked``/
    ``stats``...) and ``run_slice`` contract as the reference core —
    the machine's scheduling, deadlock diagnostics and resume logic
    work unchanged.  ``run_slice`` *is* the generator's ``send``:
    registers persist in the generator frame between slices and are
    written back to ``regs`` at halt.  Used only on the
    observation-free hot path: the machine falls back to the reference
    core when an event bus, race detector or runtime controller is
    attached (those hooks need the per-instruction interpreter).
    """

    def __init__(self, cid, program, lat, cache, memory, queues) -> None:
        super().__init__(cid, program, lat, cache, memory, queues)
        gen = runner_factory(program)(self)()
        gen.send(None)  # prime to the first yield; preload comes later
        self._gen = gen
        self.run_slice = gen.send  # shadows the method on this instance


# keep a reference so `_core` naming in generated code can't shadow the
# module accidentally (and for introspection/debugging).
_REFERENCE_CORE_MODULE = _core_mod
