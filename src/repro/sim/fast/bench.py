"""``repro bench-sim``: specialized-vs-reference simulator benchmark.

Times the reference interpreter core against the specialized generator
back end over the Table I paper corpus and records the per-kernel
ratios plus their geometric mean in ``BENCH_sim.json``.  The committed
baseline documents the speedup this repo promises (>= 3x geomean when
it was recorded); CI re-measures with ``--check`` and fails below the
file's ``floor`` — set well under the recorded geomean so shared-
runner noise cannot produce false alarms, while a real fast-path
regression (a codegen change that quietly de-specializes) still trips
it.

Every timed pair also re-asserts bit-identical results, so the bench
doubles as a coarse differential test: a run that got faster by
getting wrong answers fails before it reports a number.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field

BENCH_SIM_PATH = "BENCH_sim.json"
BENCH_SIM_SCHEMA = 1

#: CI floor on the measured geomean speedup.  Deliberately far below
#: the recorded baseline: it guards against "the fast path stopped
#: being fast" (ratio ~1), not against machine-to-machine variance.
DEFAULT_FLOOR = 2.0


@dataclass
class SimBenchRow:
    kernel: str
    cores: int
    trip: int
    instrs: int
    ref_ms: float
    spec_ms: float

    @property
    def speedup(self) -> float:
        return self.ref_ms / self.spec_ms if self.spec_ms > 0 else 0.0


@dataclass
class SimBenchResult:
    trip: int
    cores: int
    repeats: int
    rows: list[SimBenchRow] = field(default_factory=list)

    @property
    def geomean(self) -> float:
        ratios = [r.speedup for r in self.rows if r.speedup > 0]
        if not ratios:
            return 0.0
        return math.exp(sum(math.log(x) for x in ratios) / len(ratios))

    def format(self) -> str:
        lines = [
            f"{'kernel':12s} {'ref':>9s} {'specialized':>12s} {'speedup':>8s}"
        ]
        for r in self.rows:
            lines.append(
                f"{r.kernel:12s} {r.ref_ms:7.1f}ms {r.spec_ms:10.1f}ms "
                f"{r.speedup:7.2f}x"
            )
        lines.append(
            f"geomean speedup over {len(self.rows)} kernel(s): "
            f"{self.geomean:.2f}x"
        )
        return "\n".join(lines)


def _time_mode(kernel, workload, params, mode: str, repeats: int):
    """Best-of-``repeats`` wall time for one (kernel, mode) pair."""
    from ...runtime.exec import execute_kernel

    best = math.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute_kernel(kernel, workload, params, sim_mode=mode)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(
    trip: int = 512,
    n_cores: int = 4,
    repeats: int = 3,
    kernels: list[str] | None = None,
) -> SimBenchResult:
    """Benchmark the Table I corpus; raises on any result mismatch."""
    from ...compiler.config import CompilerConfig
    from ...fuzz.campaign import results_equal
    from ...kernels import get_kernel, table1_kernels
    from ...runtime.exec import compile_loop
    from ...sim.machine import MachineParams

    specs = (
        [get_kernel(name) for name in kernels]
        if kernels else table1_kernels()
    )
    out = SimBenchResult(trip=trip, cores=n_cores, repeats=repeats)
    params = MachineParams()
    for spec in specs:
        loop = spec.loop()
        kernel = compile_loop(loop, n_cores, CompilerConfig())
        wl = spec.workload(trip=trip)
        # warm the runner cache so codegen time is not in the timing
        _, warm = _time_mode(kernel, wl, params, "specialized", 1)
        ref_s, ref = _time_mode(kernel, wl, params, "reference", repeats)
        spec_s, fast = _time_mode(kernel, wl, params, "specialized", repeats)
        if not results_equal(ref, fast) or not results_equal(ref, warm):
            raise AssertionError(
                f"{spec.name}: specialized result differs from reference — "
                "refusing to record a benchmark for a wrong answer"
            )
        out.rows.append(SimBenchRow(
            kernel=spec.name, cores=n_cores, trip=trip,
            instrs=ref.total_instrs,
            ref_ms=1e3 * ref_s, spec_ms=1e3 * spec_s,
        ))
    return out


def bench_doc(result: SimBenchResult, floor: float = DEFAULT_FLOOR) -> dict:
    return {
        "schema": BENCH_SIM_SCHEMA,
        "config": {
            "trip": result.trip,
            "cores": result.cores,
            "repeats": result.repeats,
        },
        "floor": floor,
        "geomean": round(result.geomean, 4),
        "rows": [
            {
                "kernel": r.kernel,
                "cores": r.cores,
                "trip": r.trip,
                "instrs": r.instrs,
                "ref_ms": round(r.ref_ms, 3),
                "spec_ms": round(r.spec_ms, 3),
                "speedup": round(r.speedup, 4),
            }
            for r in result.rows
        ],
    }


def write_bench(path: str | os.PathLike, doc: dict) -> None:
    """Atomic whole-document write (temp file + rename)."""
    directory = os.path.dirname(os.fspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".bench.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_floor(path: str | os.PathLike) -> float:
    """CI floor recorded in a committed bench file (default if unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        return float(doc["floor"])
    except (OSError, ValueError, KeyError, TypeError):
        return DEFAULT_FLOOR
