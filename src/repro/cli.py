"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``list`` — list registered kernels (optionally by app/category);
* ``run <kernel>`` — compile + simulate one kernel, print speedup,
  statistics and correctness;
* ``experiment <id>`` — run one paper artifact (E1..E9) or ``all``;
* ``show <kernel>`` — print the kernel IR and its flat normalized form;
* ``characterize`` — run the §IV classifier over the corpus.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .kernels import all_kernels

    for spec in all_kernels():
        if args.app and spec.app != args.app:
            continue
        if args.category and spec.category != args.category:
            continue
        print(
            f"{spec.name:12s} {spec.app:8s} {spec.category:17s} "
            f"{spec.pct_time:5.1f}%  {spec.source}"
        )
    return 0


def _cmd_show(args) -> int:
    from .ir import fmt_flat, fmt_loop, normalize
    from .kernels import get_kernel

    loop = get_kernel(args.kernel).loop()
    print(fmt_loop(loop))
    print()
    print(fmt_flat(normalize(loop, max_height=args.height)))
    return 0


def _cmd_run(args) -> int:
    import numpy as np

    from .compiler import CompilerConfig
    from .interp import run_loop
    from .kernels import get_kernel
    from .runtime import compile_loop, execute_kernel
    from .sim import MachineParams

    spec = get_kernel(args.kernel)
    loop = spec.loop()
    wl = spec.workload(trip=args.trip)
    ref = run_loop(loop, wl)

    machine = MachineParams(
        queue_latency=args.latency, queue_depth=args.depth
    )
    config = CompilerConfig(
        speculation=args.speculate,
        throughput_heuristic=args.throughput,
        max_queues=args.max_queues,
        profile_workload=wl,
    )
    seq = execute_kernel(compile_loop(loop, 1), wl, machine)
    kern = compile_loop(loop, args.cores, config)
    res = execute_kernel(kern, wl, machine, detect_races=args.races)

    ok = all(
        np.array_equal(ref.arrays[n], res.arrays[n]) for n in ref.arrays
    ) and all(res.scalars.get(k) == v for k, v in ref.scalars.items())
    st = kern.plan.stats
    print(f"kernel       : {spec.name} ({spec.source})")
    print(f"cores        : {args.cores}  (partitions: {st.n_partitions})")
    print(f"fibers       : {st.initial_fibers}  data deps: {st.data_deps}")
    print(f"load balance : {st.load_balance:.2f}")
    print(f"com ops/iter : {st.com_ops}  queues: {st.queues_used}")
    print(f"sequential   : {seq.cycles:12.0f} cycles")
    print(f"parallel     : {res.cycles:12.0f} cycles")
    print(f"speedup      : {seq.cycles / res.cycles:12.2f}x")
    print(f"queue stall  : {res.total_queue_stall:12.0f} core-cycles")
    print(f"bit-exact    : {ok}")
    if args.races:
        print(f"races        : {len(res.races)}")
        for r in res.races:
            print(f"  {r}")
    return 0 if ok and not (args.races and res.races) else 1


def _cmd_experiment(args) -> int:
    from .experiments import REGISTRY

    ids = sorted(REGISTRY) if args.id == "all" else [args.id.upper()]
    for eid in ids:
        if eid not in REGISTRY:
            print(f"unknown experiment {eid!r}; known: {sorted(REGISTRY)}")
            return 2
        mod, title = REGISTRY[eid]
        print(f"===== {eid}: {title} =====")
        res = mod.run() if eid == "E1" else mod.run(trip=args.trip)
        print(mod.format_result(res))
        print()
    return 0


def _cmd_characterize(args) -> int:
    from .characterize import characterize_corpus
    from .characterize.report import format_report

    print(format_report(characterize_corpus()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Fine-grained parallelization of sequential loops "
        "over hardware queues (IPPS 2014 reproduction).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    lp = sub.add_parser("list", help="list registered kernels")
    lp.add_argument("--app", help="filter by application")
    lp.add_argument("--category", help="filter by §IV category")
    lp.set_defaults(fn=_cmd_list)

    sp = sub.add_parser("show", help="print a kernel's IR")
    sp.add_argument("kernel")
    sp.add_argument("--height", type=int, default=2)
    sp.set_defaults(fn=_cmd_show)

    rp = sub.add_parser("run", help="compile + simulate one kernel")
    rp.add_argument("kernel")
    rp.add_argument("--cores", type=int, default=4)
    rp.add_argument("--trip", type=int, default=128)
    rp.add_argument("--latency", type=int, default=5)
    rp.add_argument("--depth", type=int, default=20)
    rp.add_argument("--speculate", action="store_true")
    rp.add_argument("--throughput", action="store_true")
    rp.add_argument("--max-queues", type=int, default=None)
    rp.add_argument("--races", action="store_true",
                    help="enable the happens-before race detector")
    rp.set_defaults(fn=_cmd_run)

    ep = sub.add_parser("experiment", help="run a paper artifact (E1..E9|all)")
    ep.add_argument("id")
    ep.add_argument("--trip", type=int, default=64)
    ep.set_defaults(fn=_cmd_experiment)

    cp = sub.add_parser("characterize", help="run the §IV classifier")
    cp.set_defaults(fn=_cmd_characterize)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
