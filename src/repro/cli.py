"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``list`` — list registered kernels (optionally by app/category/
  origin); ``kernels list|show|run`` is the namespaced spelling of
  the same commands;
* ``run <kernel>`` — compile + simulate one kernel, print speedup,
  statistics and correctness;
* ``ingest <file.py>`` — lower counted Python loops into the IR via
  :mod:`repro.frontend`, register them under ``frontend/`` and prove
  each against the differential python/interpreter/simulator oracle;
* ``trace <kernel>`` — export a run as Chrome trace-event JSON
  (open in https://ui.perfetto.dev);
* ``profile <kernel>`` — per-core stall attribution + queue pressure,
  and append the headline numbers to ``BENCH_obs.json``;
* ``experiment <id>`` — run one paper artifact (E1..E13) or ``all``;
* ``chaos`` — seeded fault-injection campaign over tier-1 kernels
  through the guarded runtime (resilience table, exit 1 on any
  silent corruption);
* ``chaos-adapt`` — imbalance chaos campaign (E13): skewed-core fault
  plans run static vs. adaptive (work-stealing placement, self-tuned
  queue depths, checker-verified reconfiguration); exit 1 unless
  adaptation wins on imbalanced cells with zero silent corruption;
  updates ``BENCH_adaptive.json``;
* ``chaos-serve`` — crash-safety campaign against the serving stack
  (E12): worker kills, daemon SIGKILL mid-sweep + journal resume,
  torn/garbage NDJSON, disk-full store writes; exit 1 on any
  lost ack or duplicate compute;
* ``check`` — static queue-protocol verification of lowered kernels
  across a cores × depth × speculation matrix (exit 1 on rejection);
* ``fuzz`` — seeded differential fuzzing campaign with shrinking and
  replayable JSON artifacts (``--replay`` re-probes a saved finding;
  ``--corpus frontend`` mutates ingested real-loop IR instead of
  drawing from the grammar; ``--sim-modes specialized,batched`` arms
  fast-simulator legs that must match the reference back end exactly);
* ``bench-sim`` — time the specialized simulator against the
  reference core over the Table I corpus; ``--write`` records the
  baseline to ``BENCH_sim.json``, ``--check`` fails below its floor;
* ``sweep`` — run a kernel × core-count grid through the parallel
  sweep engine and the persistent result store; ``--journal`` arms
  the write-ahead journal and ``--resume`` replays a crashed one,
  re-dispatching only the missing cells;
* ``serve`` — run the async compile-and-simulate daemon (NDJSON over
  TCP: compile/run/sweep/trace/metrics/health endpoints, tiered
  cache, singleflight coalescing, priority admission, rate limits,
  journaled computes, supervised workers, graceful SIGTERM drain);
* ``loadgen`` — zipf-distributed synthetic-client load campaign
  (cold + warm phases) against a daemon or an in-process service;
  enforces the coalescing/durability invariants (exit 1 on
  violation), optionally under an armed fault plan (``--chaos``);
  updates ``BENCH_serve.json``;
* ``cache {stats,clear,gc}`` — inspect / maintain the result store
  (stats includes the serve cache-tier counters);
* ``show <kernel>`` — print the kernel IR and its flat normalized form;
* ``characterize`` — run the §IV classifier over the corpus
  (``--namespace frontend`` characterizes the ingested loops instead).
"""

from __future__ import annotations

import argparse
import os
import sys

#: default evaluation trip count for ``experiment`` (matches
#: :data:`repro.experiments.common.DEFAULT_TRIP`).
_DEFAULT_TRIP = 64

#: mirrors :data:`repro.experiments.chaos.DEFAULT_KERNELS` — the CLI
#: keeps heavyweight imports lazy, so the help text repeats the names
#: (a test asserts the two stay in sync).
_CHAOS_DEFAULT_KERNELS = ("lammps-1", "irs-1", "umt2k-1", "sphot-2")

#: mirrors :data:`repro.faults.SERVE_FAULT_KINDS` (same lazy-import
#: rationale; a test asserts the two stay in sync).
_SERVE_FAULT_KINDS = ("compute-crash", "store-enospc", "store-eio")

#: mirrors :data:`repro.experiments.imbalance.DEFAULT_KERNELS` (same
#: lazy-import rationale; a test asserts the two stay in sync).
_ADAPT_DEFAULT_KERNELS = ("umt2k-1", "lammps-1", "irs-1", "sphot-2")


def _cmd_list(args) -> int:
    from .kernels import all_kernels

    for spec in all_kernels():
        if args.app and spec.app != args.app:
            continue
        if args.category and spec.category != args.category:
            continue
        if args.origin and spec.origin != args.origin:
            continue
        print(
            f"{spec.name:26s} {spec.app:8s} {spec.origin:10s} "
            f"{spec.category:17s} {spec.pct_time:5.1f}%  {spec.source}"
        )
    return 0


def _cmd_show(args) -> int:
    from .ir import fmt_flat, fmt_loop, normalize
    from .kernels import get_kernel

    loop = get_kernel(args.kernel).loop()
    print(fmt_loop(loop))
    print()
    print(fmt_flat(normalize(loop, max_height=args.height)))
    return 0


def _cmd_run(args) -> int:
    from .compiler import CompilerConfig
    from .interp import run_loop
    from .kernels import get_kernel
    from .runtime import compile_loop, execute_kernel
    from .sim import MachineParams
    from .verify import verify_result

    spec = get_kernel(args.kernel)
    loop = spec.loop()
    wl = spec.workload(trip=args.trip)
    ref = run_loop(loop, wl)

    machine = MachineParams(
        queue_latency=args.latency, queue_depth=args.depth
    )
    config = CompilerConfig(
        speculation=args.speculate,
        throughput_heuristic=args.throughput,
        max_queues=args.max_queues,
        profile_workload=wl,
    )
    seq = execute_kernel(compile_loop(loop, 1), wl, machine)
    kern = compile_loop(loop, args.cores, config)
    res = execute_kernel(kern, wl, machine, detect_races=args.races)

    ok = verify_result(ref, res)
    st = kern.plan.stats
    print(f"kernel       : {spec.name} ({spec.source})")
    print(f"cores        : {args.cores}  (partitions: {st.n_partitions})")
    print(f"fibers       : {st.initial_fibers}  data deps: {st.data_deps}")
    print(f"load balance : {st.load_balance:.2f}")
    print(f"com ops/iter : {st.com_ops}  queues: {st.queues_used}")
    print(f"sequential   : {seq.cycles:12.0f} cycles")
    print(f"parallel     : {res.cycles:12.0f} cycles")
    print(f"speedup      : {seq.cycles / res.cycles:12.2f}x")
    print(f"queue stall  : {res.total_queue_stall:12.0f} core-cycles")
    print(f"bit-exact    : {ok}")
    if args.races:
        print(f"races        : {len(res.races)}")
        for r in res.races:
            print(f"  {r}")
    return 0 if ok and not (args.races and res.races) else 1


def _obs_setup(args):
    """Shared compile+simulate-under-observation path for the ``trace``
    and ``profile`` commands.  Returns ``(spec, kern, res, log, seq)``
    or an int exit code on a bad kernel name."""
    from .compiler import CompilerConfig
    from .kernels import get_kernel
    from .obs.events import EventBus, EventLog
    from .runtime import compile_loop, execute_kernel
    from .sim import MachineParams

    try:
        spec = get_kernel(args.kernel)
    except KeyError:
        print(f"unknown kernel {args.kernel!r}; see `python -m repro list`")
        return 2
    loop = spec.loop()
    wl = spec.workload(trip=args.trip)
    machine = MachineParams(
        queue_latency=args.latency, queue_depth=args.depth
    )
    config = CompilerConfig(
        speculation=args.speculate, profile_workload=wl
    )
    seq = execute_kernel(compile_loop(loop, 1), wl, machine)
    bus = EventBus()
    log = EventLog()
    bus.subscribe(log)
    kern = compile_loop(loop, args.cores, config, obs=bus)
    res = execute_kernel(kern, wl, machine, obs=bus)
    return spec, kern, res, log, seq


def _cmd_trace(args) -> int:
    from .obs.timeline import write_chrome_trace

    setup = _obs_setup(args)
    if isinstance(setup, int):
        return setup
    spec, kern, res, log, seq = setup
    doc = write_chrome_trace(args.out, log.events)
    dropped = f"  ({log.dropped} dropped)" if log.dropped else ""
    print(f"kernel       : {spec.name}  ({args.cores} cores, trip {args.trip})")
    print(f"cycles       : {res.cycles:12.0f}  (sequential {seq.cycles:.0f})")
    print(f"events       : {len(log.events)}{dropped}")
    print(f"trace events : {len(doc['traceEvents'])}")
    print(f"wrote        : {args.out}")
    print("view         : load the file at https://ui.perfetto.dev")
    return 0


def _cmd_profile(args) -> int:
    from .obs.report import (
        BENCH_PATH, bench_row, format_profile, profile_result, update_bench,
    )
    from .obs.timeline import write_chrome_trace

    setup = _obs_setup(args)
    if isinstance(setup, int):
        return setup
    spec, kern, res, log, seq = setup
    prof = profile_result(
        res, kernel=spec.name, trip=args.trip, queue_depth=args.depth,
        stats=kern.plan.stats, seq_cycles=seq.cycles,
    )
    print(format_profile(prof))
    if args.out:
        write_chrome_trace(args.out, log.events)
        print(f"trace        : {args.out} (https://ui.perfetto.dev)")
    if not args.no_bench:
        bench = args.bench or BENCH_PATH
        update_bench(bench, bench_row(
            prof, latency=args.latency,
        ))
        print(f"bench        : updated {bench}")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import REGISTRY
    from .store.sweep import WORKERS_ENV, resolve_workers

    if args.workers is not None:
        try:
            resolve_workers(args.workers)
        except ValueError as exc:
            print(f"--workers: {exc}")
            return 2
        os.environ[WORKERS_ENV] = args.workers
    trip = args.trip if args.trip is not None else _DEFAULT_TRIP
    ids = sorted(REGISTRY) if args.id == "all" else [args.id.upper()]
    for eid in ids:
        if eid not in REGISTRY:
            print(f"unknown experiment {eid!r}; known: {sorted(REGISTRY)}")
            return 2
        mod, title = REGISTRY[eid]
        print(f"===== {eid}: {title} =====")
        if eid == "E1":
            if args.trip is not None:
                print("note: E1 is a static characterization; --trip is ignored")
            res = mod.run()
        else:
            res = mod.run(trip=trip)
        print(mod.format_result(res))
        print()
    return 0


def _parse_int_list(text: str) -> list[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def _cmd_sweep(args) -> int:
    from .experiments.common import ExpConfig
    from .kernels import get_kernel, table1_kernels
    from .store.disk import default_store
    from .store.journal import incomplete_journals, new_journal_path
    from .store.sweep import resume_grid, run_grid

    if args.resume is not None:
        store = default_store()
        if store is None:
            print("--resume needs a persistent store ($REPRO_CACHE_DIR)")
            return 2
        path = args.resume
        if path == "auto":
            found = incomplete_journals(store.root)
            if not found:
                print(f"no incomplete journal under {store.root}; nothing to resume")
                return 0
            path = str(found[-1].path)  # newest incomplete journal
        try:
            _results, report = resume_grid(
                path, workers=args.workers, timeout=args.timeout,
                retries=args.retries, store=store,
            )
        except (ValueError, OSError) as exc:
            print(f"--resume: {exc}")
            return 2
        print(report.format())
        return 0

    if args.kernels == "all":
        specs = table1_kernels()
    else:
        try:
            specs = [get_kernel(name.strip()) for name in args.kernels.split(",")]
        except KeyError as exc:
            print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
            return 2
    try:
        cores = _parse_int_list(args.cores)
    except ValueError:
        print(f"--cores expects a comma-separated list of integers, got {args.cores!r}")
        return 2
    configs = [
        ExpConfig(
            n_cores=n,
            trip=args.trip,
            seed=args.seed,
            queue_latency=args.latency,
            queue_depth=args.depth,
            speculation=args.speculate,
        )
        for n in cores
    ]
    from .store.sweep import resolve_workers

    try:
        resolve_workers(args.workers)
    except ValueError as exc:
        print(f"--workers: {exc}")
        return 2
    store = default_store()
    journal = None
    if args.journal is not None:
        if store is None:
            print("--journal needs a persistent store ($REPRO_CACHE_DIR)")
            return 2
        journal = (new_journal_path(store.root) if args.journal == "auto"
                   else args.journal)
        print(f"journal      : {journal}")
    grid = run_grid(
        specs, configs,
        workers=args.workers, timeout=args.timeout, retries=args.retries,
        store=store, journal=journal,
    )

    head = " ".join(f"{f'{n}-core':>8s}" for n in cores)
    print(f"{'kernel':12s} {head}  correct")
    bad = 0
    for spec in specs:
        runs = [grid[(spec.name, cfg)] for cfg in configs]
        cells = " ".join(
            f"{r.speedup:8.2f}" if not r.deadlocked else f"{'dead':>8s}"
            for r in runs
        )
        ok = all(r.correct or r.deadlocked for r in runs)
        bad += 0 if ok else 1
        print(f"{spec.name:12s} {cells}  {'yes' if ok else 'NO'}")
    if store is not None:
        print(
            f"store        : {store.hits} hits / {store.misses} misses / "
            f"{store.writes} writes  ({store.root})"
        )
    return 0 if bad == 0 else 1


def _cmd_chaos(args) -> int:
    from .experiments import chaos
    from .faults import FAULT_KINDS
    from .kernels import get_kernel

    kernels = chaos.DEFAULT_KERNELS
    if args.kernels:
        try:
            kernels = tuple(
                get_kernel(name.strip()).name for name in args.kernels.split(",")
            )
        except KeyError as exc:
            print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
            return 2
    faults = tuple(FAULT_KINDS)
    if args.faults:
        faults = tuple(tok.strip() for tok in args.faults.split(",") if tok.strip())
        bad = [f for f in faults if f not in FAULT_KINDS]
        if bad:
            print(f"unknown fault kind(s) {bad}; known: {list(FAULT_KINDS)}")
            return 2
    res = chaos.run(
        trip=args.trip, seed=args.seed, kernels=kernels, faults=faults,
        n_cores=args.cores, intensity=args.intensity,
    )
    print(chaos.format_result(res))
    return 0 if res.silent == 0 else 1


def _cmd_chaos_adapt(args) -> int:
    import json as _json

    from .experiments import imbalance
    from .kernels import get_kernel
    from .obs.report import BENCH_ADAPTIVE_PATH, adaptive_bench_row, update_bench

    kernels = imbalance.DEFAULT_KERNELS
    if args.kernels:
        try:
            kernels = tuple(
                get_kernel(name.strip()).name for name in args.kernels.split(",")
            )
        except KeyError as exc:
            print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
            return 2
    scenarios = imbalance.SKEW_SCENARIOS
    if args.scenarios:
        wanted = [tok.strip() for tok in args.scenarios.split(",") if tok.strip()]
        known = {s[0]: s for s in imbalance.SKEW_SCENARIOS}
        bad = [s for s in wanted if s not in known]
        if bad:
            print(f"unknown scenario(s) {bad}; known: {sorted(known)}")
            return 2
        scenarios = tuple(known[s] for s in wanted)
    res = imbalance.run(
        trip=args.trip, seed=args.seed, kernels=kernels,
        scenarios=scenarios, n_cores=args.cores,
    )
    print(imbalance.format_result(res))
    if args.json:
        doc = {
            "cells": [adaptive_bench_row(c, trip=args.trip, cores=args.cores)
                      for c in res.cells],
            "counts": res.counts,
            "total_checks": res.total_checks,
            "ok": res.ok,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"json         : wrote {args.json}")
    if not args.no_bench:
        bench = args.bench or BENCH_ADAPTIVE_PATH
        for c in res.cells:
            update_bench(bench, adaptive_bench_row(
                c, trip=args.trip, cores=args.cores,
            ))
        print(f"bench        : updated {bench}")
    return 0 if res.ok else 1


def _cmd_chaos_serve(args) -> int:
    from .experiments import chaos_serve

    scenarios = chaos_serve.SCENARIOS
    if args.scenarios:
        scenarios = tuple(
            tok.strip() for tok in args.scenarios.split(",") if tok.strip()
        )
        bad = [s for s in scenarios if s not in chaos_serve.SCENARIOS]
        if bad:
            print(f"unknown scenario(s) {bad}; "
                  f"known: {list(chaos_serve.SCENARIOS)}")
            return 2
    res = chaos_serve.run(
        seed=args.seed, scenarios=scenarios, requests=args.requests,
        tmpdir=args.store_dir,
    )
    print(chaos_serve.format_result(res))
    return 0 if res.ok else 1


def _cmd_check(args) -> int:
    from .check import check_kernel
    from .compiler import CompilerConfig
    from .kernels import all_kernels, get_kernel
    from .runtime import compile_loop

    if args.kernels:
        try:
            specs = [get_kernel(name) for name in args.kernels]
        except KeyError as exc:
            print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
            return 2
    else:
        specs = all_kernels()
    try:
        cores = _parse_int_list(args.cores)
        depths = _parse_int_list(args.depths)
    except ValueError:
        print("--cores/--depths expect comma-separated lists of integers")
        return 2
    spec_flags = {
        "off": (False,), "on": (True,), "both": (False, True),
    }[args.speculation]

    checked = 0
    rejected = 0
    for spec in specs:
        loop = spec.loop()
        for n in cores:
            for s in spec_flags:
                try:
                    kern = compile_loop(
                        loop, n, CompilerConfig(speculation=s), check=False
                    )
                except Exception as exc:
                    print(f"{spec.name}: compile failed at {n} cores "
                          f"(speculation={s}): {exc}")
                    rejected += 1
                    continue
                for depth in depths:
                    checked += 1
                    report = check_kernel(kern, queue_depth=depth)
                    if report.ok:
                        continue
                    rejected += 1
                    print(f"{spec.name} cores={n} depth={depth} "
                          f"speculation={'on' if s else 'off'}: REJECTED")
                    for line in report.describe().splitlines():
                        print(f"  {line}")
    print(
        f"checked {checked} kernel configuration(s) over "
        f"{len(specs)} kernel(s): "
        + ("all protocols verified" if rejected == 0
           else f"{rejected} REJECTED")
    )
    return 0 if rejected == 0 else 1


def _cmd_bench_sim(args) -> int:
    from .sim.fast.bench import (
        DEFAULT_FLOOR, bench_doc, load_floor, run_bench, write_bench,
    )

    kernels = None
    if args.kernels:
        kernels = [tok.strip() for tok in args.kernels.split(",") if tok.strip()]
    try:
        result = run_bench(
            trip=args.trip, n_cores=args.cores, repeats=args.repeats,
            kernels=kernels,
        )
    except KeyError as exc:
        print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
        return 2
    print(result.format())
    floor = args.floor
    if floor is None:
        floor = load_floor(args.bench) if args.check else DEFAULT_FLOOR
    if args.write:
        write_bench(args.bench, bench_doc(result, floor=floor))
        print(f"wrote {args.bench}")
    if args.check and result.geomean < floor:
        print(
            f"FAIL: geomean {result.geomean:.2f}x is below the CI floor "
            f"{floor:.2f}x — the specialized simulator lost its speedup"
        )
        return 1
    if args.check:
        print(f"OK: geomean {result.geomean:.2f}x >= floor {floor:.2f}x")
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import replay_artifact, run_campaign

    if args.replay:
        expected, observed = replay_artifact(args.replay)
        same = expected == observed
        print(f"artifact : {args.replay}")
        print(f"expected : {expected}")
        print(f"observed : {observed}")
        print("replay   : " + ("REPRODUCED" if same else "DID NOT REPRODUCE"))
        return 0 if same else 1

    sim_modes: tuple[str, ...] = ()
    if args.sim_modes:
        sim_modes = tuple(
            tok.strip() for tok in args.sim_modes.split(",") if tok.strip()
        )
        bad = [m for m in sim_modes if m not in ("specialized", "batched")]
        if bad:
            print(f"--sim-modes: unknown mode(s) {bad}; "
                  "expected specialized,batched")
            return 2
    try:
        res = run_campaign(
            args.seed,
            trials=args.trials,
            max_seconds=args.max_seconds,
            trip=args.trip,
            inject=args.inject,
            out_dir=args.out,
            corpus=args.corpus,
            sim_modes=sim_modes,
            log=print,
        )
    except ValueError as exc:
        print(f"fuzz: {exc}")
        return 2
    print(res.describe())
    return 0 if not res.findings else 1


def _cmd_serve(args) -> int:
    from .obs.metrics import default_registry
    from .serve.server import run_server
    from .serve.service import ServeConfig

    config = ServeConfig(
        store_root=args.store_dir,
        use_store=not args.no_store,
        workers=args.workers,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        l1_capacity=args.l1_size,
        l1_ttl=args.l1_ttl,
        rate=args.rate,
        burst=args.burst,
        default_timeout=args.timeout,
        journal=not args.no_journal,
        resume=args.resume,
        drain_deadline=args.drain_deadline,
        max_restarts=args.max_restarts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    return run_server(config, host=args.host, port=args.port,
                      registry=default_registry())


def _cmd_loadgen(args) -> int:
    import json as _json

    from .kernels import get_kernel
    from .serve.loadgen import (
        BENCH_PATH, LoadgenConfig, format_report, run_loadgen, write_bench,
    )

    kernels: tuple[str, ...] = ()
    if args.kernels and args.kernels != "all":
        try:
            kernels = tuple(
                get_kernel(name.strip()).name for name in args.kernels.split(",")
            )
        except KeyError as exc:
            print(f"unknown kernel {exc.args[0]!r}; see `python -m repro list`")
            return 2
    try:
        cores = tuple(_parse_int_list(args.cores))
    except ValueError:
        print(f"--cores expects a comma-separated list of integers, got {args.cores!r}")
        return 2
    if args.requests < 1 or args.clients < 1:
        print("--requests and --clients must be >= 1")
        return 2
    if args.chaos and args.host is not None:
        print("--chaos arms the owned in-process service; it cannot "
              "target a TCP daemon (drop --host)")
        return 2
    cfg = LoadgenConfig(
        requests=args.requests,
        clients=args.clients,
        zipf_s=args.zipf,
        seed=args.seed,
        kernels=kernels,
        cores=cores,
        trip=args.trip,
        chaos=args.chaos,
    )
    report = run_loadgen(cfg, host=args.host, port=args.port)
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
        print(f"metrics      : wrote {args.json}")
    if not args.no_bench:
        bench = args.bench or BENCH_PATH
        write_bench(bench, report)
        print(f"bench        : updated {bench}")

    warm = report["phases"]["warm"]["hit_rate"]
    failures = []
    if report["unhandled"]:
        failures.append(f"{report['unhandled']} unhandled server error(s)")
    errors = sum(p["errors"] for p in report["phases"].values())
    if errors and not args.chaos:
        # under --chaos, structured error responses are the injection
        # working as designed; the durability invariants below still hold.
        failures.append(f"{errors} request error(s)")
    if args.min_warm_hit is not None and warm < args.min_warm_hit:
        failures.append(
            f"warm hit rate {warm:.3f} below required {args.min_warm_hit:g}"
        )
    if args.host is None:
        # Coalescing/durability invariants — provable only against the
        # owned in-process service (fresh temp store, so every durable
        # run record was written by this campaign):
        #   * every successful compute left exactly one run record;
        #   * no cell was computed twice (chaos may leave some cells
        #     uncomputed, so <= replaces == there).
        unique = report["unique_cells_drawn"]
        computed = report["computed"]
        records = report["run_records"]
        if records is not None and computed != records:
            failures.append(
                f"durability invariant violated: {computed} computed "
                f"vs {records} run record(s)"
            )
        if args.chaos:
            if computed > unique:
                failures.append(
                    f"duplicate compute: {computed} computed for "
                    f"{unique} unique cell(s)"
                )
        elif computed != unique:
            failures.append(
                f"coalescing invariant violated: {unique} unique cell(s) "
                f"drawn vs {computed} computed"
            )
    if failures:
        print("FAILED       : " + "; ".join(failures))
        return 1
    return 0


def _cmd_cache(args) -> int:
    from .obs.metrics import default_registry
    from .serve.cache import tier_stats_line
    from .store.disk import ResultStore, store_root

    store = ResultStore(args.dir) if args.dir else ResultStore(store_root())
    if args.action == "stats":
        print(store.stats().format())
        print(tier_stats_line(default_registry()))
    elif args.action == "clear":
        print(f"removed {store.clear()} record(s) from {store.root}")
    elif args.action == "gc":
        print(f"{store.gc().format()} in {store.root}")
    return 0


def _cmd_characterize(args) -> int:
    from .characterize import characterize_corpus, format_ingested_report
    from .characterize.report import format_report
    from .kernels import frontend_kernels

    ns = args.namespace
    if ns in ("paper", "all"):
        print(format_report(characterize_corpus()))
    if ns in ("frontend", "all"):
        if ns == "all":
            print()
        if not frontend_kernels():
            print("no frontend-ingested kernels registered "
                  "(see `python -m repro ingest` / examples/ingest/)")
            if ns == "frontend":
                return 1
        else:
            print(format_ingested_report())
    return 0


def _cmd_ingest(args) -> int:
    from .frontend import (
        FrontendError,
        OracleMismatch,
        check_ingested,
        ingest_file,
        register_ingested,
    )

    from .kernels import all_kernels

    # force the registry autoload first: re-ingesting a file the
    # examples/ingest autoload already registered is then idempotent
    # instead of a duplicate-name skirmish
    all_kernels()
    try:
        ingested = ingest_file(args.file, fn=args.function)
    except FrontendError as exc:
        print(exc.format())
        return 1
    if not ingested:
        target = (f"function {args.function!r}" if args.function
                  else "any function")
        print(f"{args.file}: no ingestible loop found in {target}")
        return 1

    failures = 0
    for ing in ingested:
        try:
            register_ingested(ing)
        except FrontendError as exc:
            print(exc.format())
            failures += 1
            continue
        try:
            rep = check_ingested(
                ing, trip=args.trip, seed=args.seed, n_cores=args.cores
            )
        except OracleMismatch as exc:
            print(f"{ing.name}: ORACLE MISMATCH: {exc}")
            failures += 1
            continue
        print(
            f"{ing.name:26s} {ing.category:17s} oracle ok "
            f"(trip {rep.trip}, {rep.arrays_checked} array(s), "
            f"{rep.scalars_checked} scalar(s), {rep.cycles:.0f} cycles "
            f"@ {rep.n_cores} cores)"
        )
    if failures:
        print(f"ingest: {failures} of {len(ingested)} loop(s) failed")
        return 1

    if args.run:
        for ing in ingested:
            run_args = argparse.Namespace(
                kernel=ing.name, cores=args.cores, trip=128,
                latency=5, depth=20, speculate=False, throughput=False,
                max_queues=None, races=False,
            )
            print()
            rc = _cmd_run(run_args)
            if rc != 0:
                return rc
    if args.characterize:
        print()
        from .characterize import format_ingested_report

        print(format_ingested_report())
    return 0


def _add_list_args(lp) -> None:
    lp.add_argument("--app", help="filter by application")
    lp.add_argument("--category", help="filter by §IV category")
    lp.add_argument("--origin", default=None,
                    choices=("hand-built", "synthetic", "frontend"),
                    help="filter by kernel origin")
    lp.set_defaults(fn=_cmd_list)


def _add_show_args(sp) -> None:
    sp.add_argument("kernel")
    sp.add_argument("--height", type=int, default=2)
    sp.set_defaults(fn=_cmd_show)


def _add_run_args(rp) -> None:
    rp.add_argument("kernel")
    rp.add_argument("--cores", type=int, default=4)
    rp.add_argument("--trip", type=int, default=128)
    rp.add_argument("--latency", type=int, default=5)
    rp.add_argument("--depth", type=int, default=20)
    rp.add_argument("--speculate", action="store_true")
    rp.add_argument("--throughput", action="store_true")
    rp.add_argument("--max-queues", type=int, default=None)
    rp.add_argument("--races", action="store_true",
                    help="enable the happens-before race detector")
    rp.set_defaults(fn=_cmd_run)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Fine-grained parallelization of sequential loops "
        "over hardware queues (IPPS 2014 reproduction).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    _add_list_args(sub.add_parser("list", help="list registered kernels"))
    _add_show_args(sub.add_parser("show", help="print a kernel's IR"))
    _add_run_args(sub.add_parser("run", help="compile + simulate one kernel"))

    # `repro kernels list|show|run` — the namespaced spelling, so
    # registry-facing commands read naturally next to `repro ingest`.
    knp = sub.add_parser(
        "kernels",
        help="kernel registry commands (list | show | run)",
    )
    ksub = knp.add_subparsers(dest="kernels_command", required=True)
    _add_list_args(ksub.add_parser(
        "list", help="list registered kernels (hand-built, §IV, frontend)"))
    _add_show_args(ksub.add_parser("show", help="print a kernel's IR"))
    _add_run_args(ksub.add_parser(
        "run", help="compile + simulate one kernel"))

    ip = sub.add_parser(
        "ingest",
        help="lower counted Python loops into the IR and register them "
        "under the frontend/ namespace (differential oracle enforced)",
    )
    ip.add_argument("file", help="Python source file to ingest")
    # dest avoids colliding with the ``fn=`` dispatch attribute that
    # every subparser sets via set_defaults
    ip.add_argument("--fn", dest="function", default=None,
                    help="ingest only this function (default: every "
                    "ingestible function in the file)")
    ip.add_argument("--trip", type=int, default=64,
                    help="oracle trip count (default 64)")
    ip.add_argument("--seed", type=int, default=11,
                    help="oracle workload seed (default 11)")
    ip.add_argument("--cores", type=int, default=2,
                    help="cores for the simulated oracle leg (default 2)")
    ip.add_argument("--run", action="store_true",
                    help="also run each ingested kernel through "
                    "`repro run` after the oracle passes")
    ip.add_argument("--characterize", action="store_true",
                    help="also print the §IV characterization of the "
                    "ingested corpus")
    ip.set_defaults(fn=_cmd_ingest)

    tp = sub.add_parser(
        "trace",
        help="export one run as Chrome trace-event JSON (Perfetto)",
    )
    tp.add_argument("kernel")
    tp.add_argument("--cores", type=int, default=4)
    tp.add_argument("--trip", type=int, default=64)
    tp.add_argument("--latency", type=int, default=5)
    tp.add_argument("--depth", type=int, default=20)
    tp.add_argument("--speculate", action="store_true")
    tp.add_argument("--out", default="trace.json",
                    help="output path (default trace.json)")
    tp.set_defaults(fn=_cmd_trace)

    pp = sub.add_parser(
        "profile",
        help="per-core stall attribution + queue pressure report",
    )
    pp.add_argument("kernel")
    pp.add_argument("--cores", type=int, default=4)
    pp.add_argument("--trip", type=int, default=64)
    pp.add_argument("--latency", type=int, default=5)
    pp.add_argument("--depth", type=int, default=20)
    pp.add_argument("--speculate", action="store_true")
    pp.add_argument("--out", default=None,
                    help="also write the Chrome trace JSON here")
    pp.add_argument("--bench", default=None,
                    help="bench file to update (default BENCH_obs.json)")
    pp.add_argument("--no-bench", action="store_true",
                    help="skip updating the bench file")
    pp.set_defaults(fn=_cmd_profile)

    ep = sub.add_parser("experiment", help="run a paper artifact (E1..E13|all)")
    ep.add_argument("id")
    ep.add_argument("--trip", type=int, default=None,
                    help=f"evaluation trip count (default {_DEFAULT_TRIP}; "
                    "E1 is static and ignores it)")
    ep.add_argument("--workers", default=None,
                    help="sweep worker processes (N or 'auto'; default serial)")
    ep.set_defaults(fn=_cmd_experiment)

    wp = sub.add_parser(
        "sweep",
        help="run a kernel × cores grid via the parallel sweep engine",
    )
    wp.add_argument("--kernels", default="all",
                    help="comma-separated kernel names, or 'all' (Table I)")
    wp.add_argument("--cores", default="2,4",
                    help="comma-separated core counts (default 2,4)")
    wp.add_argument("--trip", type=int, default=_DEFAULT_TRIP)
    wp.add_argument("--seed", type=int, default=0)
    wp.add_argument("--latency", type=int, default=5)
    wp.add_argument("--depth", type=int, default=20)
    wp.add_argument("--speculate", action="store_true")
    wp.add_argument("--workers", default=None,
                    help="worker processes (N or 'auto'; default $REPRO_WORKERS, serial)")
    wp.add_argument("--timeout", type=float, default=None,
                    help="per-task timeout in seconds")
    wp.add_argument("--retries", type=int, default=1)
    wp.add_argument("--journal", nargs="?", const="auto", default=None,
                    metavar="PATH",
                    help="write-ahead journal the sweep (optionally at "
                    "PATH; default <store>/journals/sweep-*.journal)")
    wp.add_argument("--resume", nargs="?", const="auto", default=None,
                    metavar="JOURNAL",
                    help="resume a crashed journaled sweep (newest "
                    "incomplete journal when no path is given); "
                    "re-dispatches only cells missing from the store")
    wp.set_defaults(fn=_cmd_sweep)

    xp = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign through the guarded runtime",
    )
    xp.add_argument("--kernels", default=None,
                    help="comma-separated kernel names (default: chaos set "
                    f"{','.join(_CHAOS_DEFAULT_KERNELS)})")
    xp.add_argument("--faults", default=None,
                    help="comma-separated fault kinds (default: all)")
    xp.add_argument("--trip", type=int, default=24)
    xp.add_argument("--seed", type=int, default=11)
    xp.add_argument("--cores", type=int, default=4)
    xp.add_argument("--intensity", type=float, default=1.0,
                    help="fault probability scale (see FaultPlan.single)")
    xp.set_defaults(fn=_cmd_chaos)

    xa = sub.add_parser(
        "chaos-adapt",
        help="imbalance chaos campaign (E13): static vs adaptive runtime "
        "under skewed cores; exit 1 unless adaptation wins safely",
    )
    xa.add_argument("--kernels", default=None,
                    help="comma-separated kernel names (default: adapt set "
                    f"{','.join(_ADAPT_DEFAULT_KERNELS)})")
    xa.add_argument("--scenarios", default=None,
                    help="comma-separated skew scenario names "
                    "(default: all, including the balanced control)")
    xa.add_argument("--trip", type=int, default=48)
    xa.add_argument("--seed", type=int, default=13)
    xa.add_argument("--cores", type=int, default=4)
    xa.add_argument("--json", default=None,
                    help="also dump the full cell matrix JSON here")
    xa.add_argument("--bench", default=None,
                    help="bench file to update (default BENCH_adaptive.json)")
    xa.add_argument("--no-bench", action="store_true",
                    help="skip updating the bench file")
    xa.set_defaults(fn=_cmd_chaos_adapt)

    xs = sub.add_parser(
        "chaos-serve",
        help="crash-safety campaign against the serving stack (E12): "
        "worker kills, daemon SIGKILL + resume, torn NDJSON, disk-full",
    )
    xs.add_argument("--seed", type=int, default=12)
    xs.add_argument("--scenarios", default=None,
                    help="comma-separated scenario names (default: all)")
    xs.add_argument("--requests", type=int, default=10,
                    help="requests per scenario (default 10)")
    xs.add_argument("--store-dir", default=None,
                    help="scratch directory for per-scenario stores "
                    "(default: a fresh temp dir)")
    xs.set_defaults(fn=_cmd_chaos_serve)

    kp = sub.add_parser(
        "check",
        help="statically verify kernel queue protocols (exit 1 on rejection)",
    )
    kp.add_argument("kernels", nargs="*",
                    help="kernel names (default: all registered kernels)")
    kp.add_argument("--cores", default="2,4",
                    help="comma-separated core counts (default 2,4)")
    kp.add_argument("--depths", default="4,20",
                    help="comma-separated queue depths (default 4,20)")
    kp.add_argument("--speculation", choices=("off", "on", "both"),
                    default="both")
    kp.set_defaults(fn=_cmd_check)

    fp = sub.add_parser(
        "fuzz",
        help="seeded differential fuzzing campaign with shrinking",
    )
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--trials", type=int, default=None,
                    help="trial budget (default 25 unless --max-seconds)")
    fp.add_argument("--max-seconds", type=float, default=None,
                    help="wall-clock budget for the campaign")
    fp.add_argument("--trip", type=int, default=16)
    fp.add_argument("--inject", default=None,
                    choices=("drop-enq", "swap-enq", "flip-guard", "delay-deq"),
                    help="arm a known protocol-bug mutation after compilation")
    fp.add_argument("--out", default=None,
                    help="directory for replayable JSON repro artifacts")
    fp.add_argument("--replay", default=None,
                    help="re-probe a saved artifact instead of fuzzing")
    fp.add_argument("--corpus", default="gen", choices=("gen", "frontend"),
                    help="trial source: 'gen' draws from the loop grammar; "
                    "'frontend' mutates frontend-ingested kernel IR")
    fp.add_argument("--sim-modes", default=None,
                    help="comma list of fast-simulator legs to arm per probe "
                    "(specialized,batched): each must match the reference "
                    "back end exactly or the probe is a finding")
    fp.set_defaults(fn=_cmd_fuzz)

    bs = sub.add_parser(
        "bench-sim",
        help="benchmark the specialized simulator vs the reference core",
    )
    bs.add_argument("--trip", type=int, default=512)
    bs.add_argument("--cores", type=int, default=4)
    bs.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per (kernel, mode); best-of wins")
    bs.add_argument("--kernels", default=None,
                    help="comma list of kernels (default: Table I corpus)")
    bs.add_argument("--bench", default="BENCH_sim.json",
                    help="bench file to read the floor from / write to")
    bs.add_argument("--write", action="store_true",
                    help="write the measured baseline to --bench")
    bs.add_argument("--check", action="store_true",
                    help="exit 1 when the geomean falls below the floor "
                    "recorded in --bench")
    bs.add_argument("--floor", type=float, default=None,
                    help="override the speedup floor used by --check/--write")
    bs.set_defaults(fn=_cmd_bench_sim)

    vp = sub.add_parser(
        "serve",
        help="run the async compile-and-simulate daemon (NDJSON/TCP)",
    )
    vp.add_argument("--host", default="127.0.0.1")
    vp.add_argument("--port", type=int, default=7421,
                    help="TCP port (0 picks an ephemeral port)")
    vp.add_argument("--workers", type=int, default=0,
                    help="compute processes (0 = bounded thread executor)")
    vp.add_argument("--max-concurrency", type=int, default=4,
                    help="concurrent compute slots")
    vp.add_argument("--max-queue", type=int, default=1024,
                    help="bounded admission wait list")
    vp.add_argument("--l1-size", type=int, default=4096,
                    help="L1 LRU capacity (entries)")
    vp.add_argument("--l1-ttl", type=float, default=None,
                    help="L1 entry TTL in seconds (default: no expiry)")
    vp.add_argument("--rate", type=float, default=0.0,
                    help="per-client rate limit in req/s (0 = unlimited)")
    vp.add_argument("--burst", type=float, default=None,
                    help="rate-limit burst (default 2x rate)")
    vp.add_argument("--timeout", type=float, default=60.0,
                    help="default per-request compute timeout (seconds)")
    vp.add_argument("--store-dir", default=None,
                    help="L2 store root (default $REPRO_CACHE_DIR or "
                    "~/.cache/repro/store)")
    vp.add_argument("--no-store", action="store_true",
                    help="disable the L2 disk tier (L1 only)")
    vp.add_argument("--no-journal", action="store_true",
                    help="disable the write-ahead compute journal")
    vp.add_argument("--resume", action="store_true",
                    help="replay incomplete journals under the store root "
                    "before accepting traffic (recompute missing cells)")
    vp.add_argument("--drain-deadline", type=float, default=10.0,
                    help="seconds granted to in-flight requests on "
                    "SIGTERM/SIGINT before exiting (default 10)")
    vp.add_argument("--max-restarts", type=int, default=3,
                    help="executor rebuilds allowed before compute is "
                    "disabled (default 3)")
    vp.add_argument("--breaker-threshold", type=int, default=5,
                    help="consecutive per-key failures tripping the "
                    "circuit breaker (default 5)")
    vp.add_argument("--breaker-cooldown", type=float, default=30.0,
                    help="seconds a tripped key sheds load before a "
                    "half-open probe (default 30)")
    vp.set_defaults(fn=_cmd_serve)

    gp = sub.add_parser(
        "loadgen",
        help="zipf synthetic-client load campaign (cold + warm phases)",
    )
    gp.add_argument("--host", default=None,
                    help="target daemon host (default: in-process service "
                    "over a fresh temp store)")
    gp.add_argument("--port", type=int, default=7421)
    gp.add_argument("--requests", type=int, default=1000,
                    help="requests per phase (default 1000)")
    gp.add_argument("--clients", type=int, default=50,
                    help="concurrent synthetic clients (default 50)")
    gp.add_argument("--zipf", type=float, default=1.1,
                    help="zipf exponent shaping kernel popularity")
    gp.add_argument("--seed", type=int, default=0)
    gp.add_argument("--kernels", default="all",
                    help="comma-separated kernel names, or 'all' (Table I)")
    gp.add_argument("--cores", default="2,4",
                    help="comma-separated core counts (default 2,4)")
    gp.add_argument("--trip", type=int, default=16)
    gp.add_argument("--json", default=None,
                    help="also dump the full report JSON here")
    gp.add_argument("--bench", default=None,
                    help="bench file to update (default BENCH_serve.json)")
    gp.add_argument("--no-bench", action="store_true",
                    help="skip updating the bench file")
    gp.add_argument("--min-warm-hit", type=float, default=None,
                    help="exit 1 if the warm-phase hit rate is below this")
    gp.add_argument("--chaos", default=None, choices=_SERVE_FAULT_KINDS,
                    help="arm a serve-side fault plan on the owned "
                    "in-process service (incompatible with --host); the "
                    "durability invariants are still enforced")
    gp.set_defaults(fn=_cmd_loadgen)

    cp2 = sub.add_parser("cache", help="persistent result-store maintenance")
    cp2.add_argument("action", choices=("stats", "clear", "gc"))
    cp2.add_argument("--dir", default=None,
                     help="store root (default $REPRO_CACHE_DIR or "
                     "~/.cache/repro/store)")
    cp2.set_defaults(fn=_cmd_cache)

    cp = sub.add_parser("characterize", help="run the §IV classifier")
    cp.add_argument("--namespace", default="paper",
                    choices=("paper", "frontend", "all"),
                    help="which kernel population to classify: the "
                    "paper's 51-loop corpus (default), the "
                    "frontend-ingested loops, or both")
    cp.set_defaults(fn=_cmd_characterize)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
