"""Legacy setup shim.

The offline build environment has setuptools but no `wheel`, so PEP 517
editable installs (which require building an editable wheel) fail.
This shim lets `pip install -e .` fall back to `setup.py develop`.
Metadata lives in pyproject.toml's [project] table.
"""

from setuptools import setup

setup()
